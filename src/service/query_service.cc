#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"
#include "query/canonical.h"

namespace dpstarj::service {

namespace {

// Resolves the per-engine executor thread count so the pool's workers share
// the machine instead of oversubscribing it: N engines × T exec threads is
// kept ≤ the hardware thread count (with a floor of 1 each). Every engine is
// pointed at the service's shared plan cache unless the caller supplied one.
core::DpStarJoinOptions ResolveEngineOptions(
    const ServiceOptions& options,
    const std::shared_ptr<exec::PlanCache>& shared_plans) {
  core::DpStarJoinOptions engine = options.engine;
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int engines = std::max(1, options.num_engines);
  const int fair_share = std::max(1, hardware / engines);
  int requested = options.exec_threads_per_engine;
  if (requested <= 0) requested = fair_share;
  engine.executor.exec_threads = std::min(requested, fair_share);
  if (engine.plan_cache == nullptr) engine.plan_cache = shared_plans;
  return engine;
}

// The tables a bound query scans, for LockTablesShared.
std::vector<std::string> TableNamesOf(const query::BoundQuery& bound) {
  std::vector<std::string> names;
  names.reserve(bound.dims.size() + 1);
  names.push_back(bound.fact->name());
  for (const auto& d : bound.dims) names.push_back(d.dim->name());
  return names;
}

}  // namespace

std::string ServiceStats::ToString() const {
  return Format(
      "submitted %llu, completed %llu, failed %llu, rejected %llu, "
      "overloaded %llu, tenant-limited %llu | "
      "workloads: %llu batches (%llu fresh / %llu cached / %llu failed) | "
      "ingest: %llu batches / %llu rows | "
      "cache: %llu hits / %llu misses (%.1f%% hit rate), eps saved %.4g | "
      "plans: %llu hits / %llu misses (%llu extended), "
      "%llu invalidated (%llu append / %llu identity)",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected_budget),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(rejected_tenant_limited),
      static_cast<unsigned long long>(workload_batches),
      static_cast<unsigned long long>(workload_queries_fresh),
      static_cast<unsigned long long>(workload_queries_cached),
      static_cast<unsigned long long>(workload_queries_failed),
      static_cast<unsigned long long>(ingest_batches),
      static_cast<unsigned long long>(ingest_rows),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), 100.0 * cache.HitRate(),
      cache.epsilon_saved, static_cast<unsigned long long>(plan_cache.hits),
      static_cast<unsigned long long>(plan_cache.misses),
      static_cast<unsigned long long>(plan_cache.extends),
      static_cast<unsigned long long>(plan_cache.invalidations),
      static_cast<unsigned long long>(plan_cache.invalidated_append),
      static_cast<unsigned long long>(plan_cache.invalidated_identity));
}

QueryService::QueryService(const storage::Catalog* catalog, ServiceOptions options)
    : metrics_(options.metrics != nullptr ? options.metrics
                                          : std::make_shared<obs::MetricsRegistry>()),
      catalog_(catalog),
      ledger_(options.default_tenant_budget),
      cache_(options.cache_capacity),
      admission_(options.admission),
      plan_cache_(options.engine.plan_cache != nullptr
                      ? options.engine.plan_cache
                      : std::make_shared<exec::PlanCache>(
                            options.plan_cache_capacity)),
      pool_(catalog, options.num_engines, options.queue_capacity,
            ResolveEngineOptions(options, plan_cache_)),
      submitted_(metrics_->GetCounter("dpstarj_queries_submitted_total",
                                      "Queries that reached a pool worker")),
      completed_(metrics_->GetCounter("dpstarj_queries_completed_total",
                                      "Queries answered (fresh or replayed)")),
      failed_(metrics_->GetCounter("dpstarj_queries_failed_total",
                                   "Admitted queries that failed (epsilon refunded)")),
      rejected_budget_(metrics_->GetCounter(
          "dpstarj_queries_rejected_total", "Queries refused at admission, by kind",
          {{"reason", "budget"}})),
      rejected_overload_(metrics_->GetCounter(
          "dpstarj_queries_rejected_total", "Queries refused at admission, by kind",
          {{"reason", "overload"}})),
      rejected_tenant_limited_(metrics_->GetCounter(
          "dpstarj_queries_rejected_total", "Queries refused at admission, by kind",
          {{"reason", "tenant_limited"}})),
      workload_batches_(metrics_->GetCounter(
          "dpstarj_workload_batches_total",
          "Workload batches that reached a pool worker")),
      workload_fresh_(metrics_->GetCounter(
          "dpstarj_workload_queries_total",
          "Workload queries by outcome", {{"outcome", "fresh"}})),
      workload_cached_(metrics_->GetCounter(
          "dpstarj_workload_queries_total",
          "Workload queries by outcome", {{"outcome", "cached"}})),
      workload_failed_(metrics_->GetCounter(
          "dpstarj_workload_queries_total",
          "Workload queries by outcome", {{"outcome", "failed"}})),
      workload_cache_skips_(metrics_->GetCounter(
          "dpstarj_workload_cache_skips_total",
          "Cache-hit queries excluded from a workload's shared scan")),
      ingest_batches_(metrics_->GetCounter(
          "dpstarj_ingest_batches_total",
          "Ingest batches accepted (one table-epoch bump each)")),
      ingest_rows_(metrics_->GetCounter(
          "dpstarj_ingest_rows_total",
          "Fact rows appended across all accepted ingest batches")),
      ingest_duration_(metrics_->GetHistogram(
          "dpstarj_ingest_duration_seconds",
          "Wall time of the ingest apply (validation + locked append)", {},
          obs::Histogram::ExponentialBuckets(1e-5, 4.0, 12))),
      workload_batch_size_(metrics_->GetHistogram(
          "dpstarj_workload_batch_size", "Queries per workload batch", {},
          obs::Histogram::ExponentialBuckets(1.0, 2.0, 9))),
      queue_depth_sampled_(metrics_->GetHistogram(
          "dpstarj_queue_depth_sampled",
          "Pool queue depth observed at each dispatch", {},
          obs::Histogram::ExponentialBuckets(1.0, 2.0, 11))) {}

QueryService::~QueryService() { Shutdown(); }

std::shared_mutex* QueryService::TableLock(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(table_locks_mu_);
  auto& slot = table_locks_[table_name];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return slot.get();
}

std::vector<std::shared_lock<std::shared_mutex>> QueryService::LockTablesShared(
    std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(names.size());
  for (const auto& name : names) locks.emplace_back(*TableLock(name));
  return locks;
}

Status QueryService::RegisterTenant(const std::string& tenant, double total_epsilon) {
  return ledger_.RegisterTenant(tenant, total_epsilon);
}

void QueryService::SetTenantLimits(const std::string& tenant, TenantLimits limits) {
  admission_.SetTenantLimits(tenant, limits);
}

std::future<Result<exec::QueryResult>> QueryService::FailedFuture(Status status) {
  std::promise<Result<exec::QueryResult>> promise;
  std::future<Result<exec::QueryResult>> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

std::future<Result<exec::QueryResult>> QueryService::Submit(
    const std::string& sql, double epsilon, const std::string& tenant,
    obs::Trace* trace) {
  return SubmitInternal(sql, epsilon, tenant, /*blocking=*/true, trace);
}

std::future<Result<exec::QueryResult>> QueryService::TrySubmit(
    const std::string& sql, double epsilon, const std::string& tenant,
    obs::Trace* trace) {
  return SubmitInternal(sql, epsilon, tenant, /*blocking=*/false, trace);
}

std::future<Result<exec::QueryResult>> QueryService::SubmitInternal(
    const std::string& sql, double epsilon, const std::string& tenant,
    bool blocking, obs::Trace* trace) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return FailedFuture(Status::InvalidArgument("epsilon must be positive and finite"));
  }
  // Fair admission first: a tenant over its own rate limit or in-flight cap
  // is refused before the ledger or the pool is touched — a tenant-limited
  // RateLimited verdict, distinct from the global-overload Unavailable. An
  // admitted submission holds one of the tenant's in-flight slots until its
  // job reaches a terminal state; every exit below releases it exactly once
  // (inside the job when it runs, at the call site when dispatch fails).
  AdmissionDecision fair = [&] {
    obs::ScopedStage admission_span(trace, obs::Stage::kAdmission);
    return admission_.TryAdmit(tenant);
  }();
  if (!fair.status.ok()) {
    rejected_tenant_limited_->Inc();
    return FailedFuture(std::move(fair.status));
  }
  auto dispatch = [this, blocking, &tenant, trace](EnginePool::Job job) {
    const auto enqueued = std::chrono::steady_clock::now();
    EnginePool::Job with_release =
        [this, tenant, trace, enqueued,
         inner = std::move(job)](core::DpStarJoin& engine) {
          // First action on the worker: close the queue-wait span. The trace
          // pointer is safe to write here — the submitter keeps the trace
          // alive until the job's future resolves, and the promise/future
          // handoff publishes these writes back to it.
          if (trace != nullptr) {
            trace->Record(
                obs::Stage::kQueueWait,
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - enqueued)
                        .count()));
          }
          // Scope guard, not a tail call: the pool's worker converts a
          // throwing job into a Status, and the slot must flow back on that
          // path too — a leak here would 429 the tenant until restart.
          struct SlotGuard {
            AdmissionController& admission;
            const std::string& tenant;
            ~SlotGuard() { admission.Release(tenant); }
          } guard{admission_, tenant};
          return inner(engine);
        };
    // Depth at dispatch, before this job joins the queue: the distribution
    // operators watch for saturation building ahead of latency.
    queue_depth_sampled_->Observe(static_cast<double>(pool_.queue_depth()));
    return blocking ? pool_.Dispatch(std::move(with_release), tenant)
                    : pool_.TryDispatch(std::move(with_release), tenant);
  };
  // Admission control: spend the ε before any work is queued, so concurrent
  // submissions race on the ledger (which is exact), not on the answer path.
  Status admit = [&] {
    obs::ScopedStage spend_span(trace, obs::Stage::kLedgerSpend);
    return ledger_.Spend(tenant, epsilon);
  }();
  if (!admit.ok()) {
    if (admit.code() == StatusCode::kBudgetExhausted) {
      // Replays are free, so an exhausted tenant can still re-read answers it
      // already paid for. Probe the cache without spending anything; a miss
      // surfaces the original refusal. `submitted` is counted as the probe's
      // first action on the worker — the counter is monotonic (a registry
      // counter cannot be decremented), so it must only move once the job is
      // guaranteed to run; counting in-job also keeps completed ≤ submitted,
      // since the same job increments both in order.
      auto probe = dispatch(
          [this, sql, epsilon, admit, trace](core::DpStarJoin& engine)
              -> Result<exec::QueryResult> {
            submitted_->Inc();
            auto bound = [&] {
              obs::ScopedStage bind_span(trace, obs::Stage::kBind);
              return engine.binder().BindSql(sql);
            }();
            if (!bound.ok()) {
              failed_->Inc();
              return bound.status();
            }
            // Epoch-keyed probe with no table lock: the key only reads the
            // tables' atomic version counters, never row data, and a replay
            // is a pure copy of a stored answer.
            auto replay = [&] {
              obs::ScopedStage lookup_span(trace, obs::Stage::kCacheLookup);
              return cache_.Lookup(query::CanonicalEpochKey(*bound, epsilon),
                                   epsilon);
            }();
            if (replay) {
              if (trace != nullptr) trace->answer_cache_hit = true;
              completed_->Inc();
              return std::move(*replay);
            }
            rejected_budget_->Inc();
            return admit;
          });
      if (probe.ok()) {
        return std::move(*probe);
      }
      admission_.Release(tenant);  // the probe job will never run
      if (probe.status().code() == StatusCode::kUnavailable) {
        // The probe spent no ε; a full queue is an overload signal, not a
        // budget verdict — let the caller retry for its free replay.
        rejected_overload_->Inc();
        return FailedFuture(probe.status());
      }
      rejected_budget_->Inc();
      return FailedFuture(std::move(admit));
    }
    // Nothing was dispatched, and the ledger does not know this tenant
    // (NotFound / invalid name): drop the admission state the probe lazily
    // created too, or arbitrary tenant names on the public query endpoint
    // would grow the controller's map without bound.
    admission_.ReleaseAndForget(tenant);
    rejected_budget_->Inc();
    return FailedFuture(std::move(admit));
  }
  // `submitted` moves as the job's first worker-side action (see the probe
  // path above for why): no rollback is needed when dispatch is refused, and
  // a fast worker still cannot push completed past it.
  auto dispatched = dispatch([this, sql, epsilon, tenant, trace](
                                 core::DpStarJoin& engine) {
    submitted_->Inc();
    return Execute(engine, sql, epsilon, tenant, trace);
  });
  if (!dispatched.ok()) {
    // Queue full (TrySubmit) or pool shut down: the job will never run, so
    // the admission ε and the in-flight slot flow back.
    (void)ledger_.Refund(tenant, epsilon);
    admission_.Release(tenant);
    if (dispatched.status().code() == StatusCode::kUnavailable) {
      rejected_overload_->Inc();
    } else {
      failed_->Inc();
    }
    return FailedFuture(dispatched.status());
  }
  return std::move(*dispatched);
}

Result<exec::QueryResult> QueryService::Execute(core::DpStarJoin& engine,
                                                const std::string& sql,
                                                double epsilon,
                                                const std::string& tenant,
                                                obs::Trace* trace) {
  auto bound = [&] {
    obs::ScopedStage bind_span(trace, obs::Stage::kBind);
    return engine.binder().BindSql(sql);
  }();
  if (!bound.ok()) {
    // The tenant pays for answers, not for malformed or unbindable queries.
    (void)ledger_.Refund(tenant, epsilon);
    failed_->Inc();
    return bound.status();
  }
  // Reader-side table locks, held from key construction through the scan:
  // the epochs folded into the key cannot move while the engine reads row
  // data, so the cached answer always matches the epoch it is keyed by.
  // Ingest takes these exclusively per batch (see Ingest below).
  auto table_locks = LockTablesShared(TableNamesOf(*bound));
  const std::string key = query::CanonicalEpochKey(*bound, epsilon);
  auto replay = [&] {
    obs::ScopedStage lookup_span(trace, obs::Stage::kCacheLookup);
    return cache_.Lookup(key, epsilon);
  }();
  if (replay) {
    // Post-processing closure: re-releasing a stored noisy answer is free.
    if (trace != nullptr) trace->answer_cache_hit = true;
    (void)ledger_.Refund(tenant, epsilon);
    completed_->Inc();
    return std::move(*replay);
  }
  auto answer = engine.AnswerBound(*bound, epsilon, engine.rng(), trace);
  if (!answer.ok()) {
    (void)ledger_.Refund(tenant, epsilon);
    failed_->Inc();
    return answer.status();
  }
  answer->epoch = bound->fact->version();
  cache_.Insert(key, *answer);
  completed_->Inc();
  return std::move(*answer);
}

std::future<Result<WorkloadOutcome>> QueryService::SubmitWorkload(
    const std::vector<WorkloadQuerySpec>& queries, const std::string& tenant,
    obs::Trace* trace) {
  auto failed = [](Status status) {
    std::promise<Result<WorkloadOutcome>> promise;
    std::future<Result<WorkloadOutcome>> future = promise.get_future();
    promise.set_value(std::move(status));
    return future;
  };
  if (queries.empty()) {
    return failed(
        Status::InvalidArgument("workload must contain at least one query"));
  }
  double total_epsilon = 0.0;
  for (const auto& q : queries) {
    if (!std::isfinite(q.epsilon) || q.epsilon <= 0.0) {
      return failed(Status::InvalidArgument(
          "every workload epsilon must be positive and finite"));
    }
    total_epsilon += q.epsilon;
  }
  const int n = static_cast<int>(queries.size());
  // Fair admission debits the tenant's bucket by the batch's query count in
  // one all-or-nothing decision — a workload is N queries of capacity, not
  // one. A batch larger than the tenant's burst or in-flight cap is never
  // admissible; docs/operations.md covers sizing.
  AdmissionDecision fair = [&] {
    obs::ScopedStage admission_span(trace, obs::Stage::kAdmission);
    return admission_.TryAdmit(tenant, n);
  }();
  if (!fair.status.ok()) {
    rejected_tenant_limited_->Inc(static_cast<uint64_t>(n));
    return failed(std::move(fair.status));
  }
  // One ledger decision sized to the batch's total ε. Unlike the single-query
  // path there is no cache-probe dance for an exhausted tenant: the batch is
  // refused whole, and callers wanting free replays route the individual
  // queries through Submit (whose probe path stays).
  Status admit = [&] {
    obs::ScopedStage spend_span(trace, obs::Stage::kLedgerSpend);
    return ledger_.Spend(tenant, total_epsilon);
  }();
  if (!admit.ok()) {
    if (admit.code() == StatusCode::kNotFound) {
      admission_.ReleaseAndForget(tenant, n);
    } else {
      admission_.Release(tenant, n);
    }
    rejected_budget_->Inc(static_cast<uint64_t>(n));
    return failed(std::move(admit));
  }
  // The pool's Job protocol returns Result<QueryResult>; the batch outcome
  // travels through this promise instead, set as the job's last action. The
  // pool resolves every accepted job (Shutdown drains the queue), so the
  // future always becomes ready.
  auto promise = std::make_shared<std::promise<Result<WorkloadOutcome>>>();
  std::future<Result<WorkloadOutcome>> future = promise->get_future();
  const auto enqueued = std::chrono::steady_clock::now();
  queue_depth_sampled_->Observe(static_cast<double>(pool_.queue_depth()));
  auto dispatched = pool_.TryDispatch(
      [this, queries, tenant, trace, enqueued,
       promise](core::DpStarJoin& engine) -> Result<exec::QueryResult> {
        if (trace != nullptr) {
          trace->Record(
              obs::Stage::kQueueWait,
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - enqueued)
                      .count()));
        }
        struct SlotGuard {
          AdmissionController& admission;
          const std::string& tenant;
          int count;
          ~SlotGuard() { admission.Release(tenant, count); }
        } guard{admission_, tenant, static_cast<int>(queries.size())};
        promise->set_value(ExecuteWorkload(engine, queries, tenant, trace));
        return exec::QueryResult{};
      },
      tenant);
  if (!dispatched.ok()) {
    // Queue full or pool shut down: the job will never run, so the whole
    // batch's ε and in-flight slots flow back.
    (void)ledger_.Refund(tenant, total_epsilon);
    admission_.Release(tenant, n);
    if (dispatched.status().code() == StatusCode::kUnavailable) {
      rejected_overload_->Inc();
    } else {
      failed_->Inc(static_cast<uint64_t>(n));
    }
    return failed(dispatched.status());
  }
  return future;
}

Result<WorkloadOutcome> QueryService::ExecuteWorkload(
    core::DpStarJoin& engine, const std::vector<WorkloadQuerySpec>& queries,
    const std::string& tenant, obs::Trace* trace) {
  submitted_->Inc(static_cast<uint64_t>(queries.size()));
  workload_batches_->Inc();
  workload_batch_size_->Observe(static_cast<double>(queries.size()));

  WorkloadOutcome outcome;
  outcome.queries.resize(queries.size());

  // Bind every query first; a bind failure refunds that query's ε only — the
  // rest of the batch still answers.
  std::vector<std::optional<query::BoundQuery>> bound(queries.size());
  {
    obs::ScopedStage bind_span(trace, obs::Stage::kBind);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto b = engine.binder().BindSql(queries[i].sql);
      if (!b.ok()) {
        (void)ledger_.Refund(tenant, queries[i].epsilon);
        failed_->Inc();
        workload_failed_->Inc();
        outcome.queries[i].status = b.status();
        continue;
      }
      bound[i] = std::move(*b);
    }
  }

  // Reader-side locks over the union of the batch's tables, held from key
  // construction through the shared scan and the cache inserts: the epochs
  // folded into the keys cannot move mid-batch, so every stored answer
  // matches the epoch it is keyed by (an ingest batch lands entirely before
  // or entirely after this workload's scan).
  std::vector<std::string> batch_tables;
  for (const auto& b : bound) {
    if (!b.has_value()) continue;
    for (auto& name : TableNamesOf(*b)) batch_tables.push_back(std::move(name));
  }
  auto table_locks = LockTablesShared(std::move(batch_tables));

  // Answer-cache pre-pass: cache-hit queries are excluded from the shared
  // scan and replayed at zero ε (their share of the spend flows back) — the
  // scan only carries queries that genuinely need a fresh draw.
  std::vector<std::string> keys(queries.size());
  std::vector<size_t> miss;  // indices that still need a fresh draw
  miss.reserve(queries.size());
  {
    obs::ScopedStage lookup_span(trace, obs::Stage::kCacheLookup);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!bound[i].has_value()) continue;
      keys[i] = query::CanonicalEpochKey(*bound[i], queries[i].epsilon);
      auto replay = cache_.Lookup(keys[i], queries[i].epsilon);
      if (replay) {
        if (trace != nullptr) trace->answer_cache_hit = true;
        (void)ledger_.Refund(tenant, queries[i].epsilon);
        completed_->Inc();
        workload_cached_->Inc();
        workload_cache_skips_->Inc();
        outcome.queries[i].result = std::move(*replay);
        outcome.queries[i].cached = true;
        continue;
      }
      miss.push_back(i);
    }
  }

  if (!miss.empty()) {
    std::vector<core::BatchQueryRef> batch;
    batch.reserve(miss.size());
    for (size_t i : miss) batch.push_back({&*bound[i], queries[i].epsilon});
    std::vector<Result<exec::QueryResult>> results =
        engine.AnswerBoundBatch(batch, engine.rng(), trace, &outcome.exec);
    for (size_t k = 0; k < miss.size(); ++k) {
      const size_t i = miss[k];
      if (!results[k].ok()) {
        (void)ledger_.Refund(tenant, queries[i].epsilon);
        failed_->Inc();
        workload_failed_->Inc();
        outcome.queries[i].status = results[k].status();
        continue;
      }
      results[k]->epoch = bound[i]->fact->version();
      cache_.Insert(keys[i], *results[k]);
      completed_->Inc();
      workload_fresh_->Inc();
      outcome.queries[i].result = std::move(*results[k]);
    }
  }
  return outcome;
}

Result<exec::QueryResult> QueryService::Answer(const std::string& sql, double epsilon,
                                               const std::string& tenant) {
  return Submit(sql, epsilon, tenant).get();
}

Result<IngestOutcome> QueryService::Ingest(
    const std::string& table_name,
    const std::vector<std::vector<storage::Value>>& rows, obs::Trace* trace) {
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table,
                           catalog_->GetTable(table_name));
  if (rows.empty()) {
    return Status::InvalidArgument("ingest batch must contain at least one row");
  }
  const auto start = std::chrono::steady_clock::now();
  // Validate the whole batch before taking the write lock: the batch applies
  // all-or-nothing, and in-flight scans are never stalled behind validation
  // of rows that might be refused anyway.
  for (size_t i = 0; i < rows.size(); ++i) {
    Status valid = table->ValidateRow(rows[i]);
    if (!valid.ok()) {
      return Status::InvalidArgument(
          Format("ingest row %zu: %s", i, valid.message().c_str()));
    }
  }
  IngestOutcome out;
  {
    obs::ScopedStage apply_span(trace, obs::Stage::kIngestApply);
    std::unique_lock<std::shared_mutex> lock(*TableLock(table_name));
    for (const auto& row : rows) {
      Status applied = table->AppendRow(row);
      // Pre-validated above, and appends to this table are serialized by the
      // exclusive lock — a failure here is a logic error, not bad input.
      DPSTARJ_CHECK(applied.ok(), "validated ingest row must append");
    }
    // One epoch bump per accepted batch (not per row): the batch is the unit
    // of release — queries see either none or all of it.
    table->BumpVersion();
    out.appended = static_cast<int64_t>(rows.size());
    out.rows_total = table->num_rows();
    out.version = table->version();
  }
  ingest_batches_->Inc();
  ingest_rows_->Inc(static_cast<uint64_t>(out.appended));
  ingest_duration_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return out;
}

Result<double> QueryService::RemainingBudget(const std::string& tenant) const {
  return ledger_.Remaining(tenant);
}

ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_->Value();
  stats.completed = completed_->Value();
  stats.failed = failed_->Value();
  stats.rejected_budget = rejected_budget_->Value();
  stats.rejected_overload = rejected_overload_->Value();
  stats.rejected_tenant_limited = rejected_tenant_limited_->Value();
  stats.tenant_rate_limited = admission_.total_rate_limited();
  stats.tenant_capped = admission_.total_capped();
  stats.workload_batches = workload_batches_->Value();
  stats.workload_queries_fresh = workload_fresh_->Value();
  stats.workload_queries_cached = workload_cached_->Value();
  stats.workload_queries_failed = workload_failed_->Value();
  stats.workload_cache_skips = workload_cache_skips_->Value();
  stats.ingest_batches = ingest_batches_->Value();
  stats.ingest_rows = ingest_rows_->Value();
  stats.cache = cache_.GetStats();
  stats.plan_cache = plan_cache_->GetStats();
  return stats;
}

void QueryService::Shutdown() { pool_.Shutdown(); }

}  // namespace dpstarj::service
