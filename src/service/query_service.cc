#include "service/query_service.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/string_util.h"
#include "query/canonical.h"

namespace dpstarj::service {

namespace {

// Resolves the per-engine executor thread count so the pool's workers share
// the machine instead of oversubscribing it: N engines × T exec threads is
// kept ≤ the hardware thread count (with a floor of 1 each). Every engine is
// pointed at the service's shared plan cache unless the caller supplied one.
core::DpStarJoinOptions ResolveEngineOptions(
    const ServiceOptions& options,
    const std::shared_ptr<exec::PlanCache>& shared_plans) {
  core::DpStarJoinOptions engine = options.engine;
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int engines = std::max(1, options.num_engines);
  const int fair_share = std::max(1, hardware / engines);
  int requested = options.exec_threads_per_engine;
  if (requested <= 0) requested = fair_share;
  engine.executor.exec_threads = std::min(requested, fair_share);
  if (engine.plan_cache == nullptr) engine.plan_cache = shared_plans;
  return engine;
}

}  // namespace

std::string ServiceStats::ToString() const {
  return Format(
      "submitted %llu, completed %llu, failed %llu, rejected %llu, "
      "overloaded %llu, tenant-limited %llu | "
      "cache: %llu hits / %llu misses (%.1f%% hit rate), eps saved %.4g | "
      "plans: %llu hits / %llu misses, %llu invalidated",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected_budget),
      static_cast<unsigned long long>(rejected_overload),
      static_cast<unsigned long long>(rejected_tenant_limited),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), 100.0 * cache.HitRate(),
      cache.epsilon_saved, static_cast<unsigned long long>(plan_cache.hits),
      static_cast<unsigned long long>(plan_cache.misses),
      static_cast<unsigned long long>(plan_cache.invalidations));
}

QueryService::QueryService(const storage::Catalog* catalog, ServiceOptions options)
    : ledger_(options.default_tenant_budget),
      cache_(options.cache_capacity),
      admission_(options.admission),
      plan_cache_(options.engine.plan_cache != nullptr
                      ? options.engine.plan_cache
                      : std::make_shared<exec::PlanCache>(
                            options.plan_cache_capacity)),
      pool_(catalog, options.num_engines, options.queue_capacity,
            ResolveEngineOptions(options, plan_cache_)) {}

QueryService::~QueryService() { Shutdown(); }

Status QueryService::RegisterTenant(const std::string& tenant, double total_epsilon) {
  return ledger_.RegisterTenant(tenant, total_epsilon);
}

void QueryService::SetTenantLimits(const std::string& tenant, TenantLimits limits) {
  admission_.SetTenantLimits(tenant, limits);
}

std::future<Result<exec::QueryResult>> QueryService::FailedFuture(Status status) {
  std::promise<Result<exec::QueryResult>> promise;
  std::future<Result<exec::QueryResult>> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

std::future<Result<exec::QueryResult>> QueryService::Submit(
    const std::string& sql, double epsilon, const std::string& tenant) {
  return SubmitInternal(sql, epsilon, tenant, /*blocking=*/true);
}

std::future<Result<exec::QueryResult>> QueryService::TrySubmit(
    const std::string& sql, double epsilon, const std::string& tenant) {
  return SubmitInternal(sql, epsilon, tenant, /*blocking=*/false);
}

std::future<Result<exec::QueryResult>> QueryService::SubmitInternal(
    const std::string& sql, double epsilon, const std::string& tenant,
    bool blocking) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return FailedFuture(Status::InvalidArgument("epsilon must be positive and finite"));
  }
  // Fair admission first: a tenant over its own rate limit or in-flight cap
  // is refused before the ledger or the pool is touched — a tenant-limited
  // RateLimited verdict, distinct from the global-overload Unavailable. An
  // admitted submission holds one of the tenant's in-flight slots until its
  // job reaches a terminal state; every exit below releases it exactly once
  // (inside the job when it runs, at the call site when dispatch fails).
  AdmissionDecision fair = admission_.TryAdmit(tenant);
  if (!fair.status.ok()) {
    ++rejected_tenant_limited_;
    return FailedFuture(std::move(fair.status));
  }
  auto dispatch = [this, blocking, &tenant](EnginePool::Job job) {
    EnginePool::Job with_release =
        [this, tenant, inner = std::move(job)](core::DpStarJoin& engine) {
          // Scope guard, not a tail call: the pool's worker converts a
          // throwing job into a Status, and the slot must flow back on that
          // path too — a leak here would 429 the tenant until restart.
          struct SlotGuard {
            AdmissionController& admission;
            const std::string& tenant;
            ~SlotGuard() { admission.Release(tenant); }
          } guard{admission_, tenant};
          return inner(engine);
        };
    return blocking ? pool_.Dispatch(std::move(with_release), tenant)
                    : pool_.TryDispatch(std::move(with_release), tenant);
  };
  // Admission control: spend the ε before any work is queued, so concurrent
  // submissions race on the ledger (which is exact), not on the answer path.
  Status admit = ledger_.Spend(tenant, epsilon);
  if (!admit.ok()) {
    if (admit.code() == StatusCode::kBudgetExhausted) {
      // Replays are free, so an exhausted tenant can still re-read answers it
      // already paid for. Probe the cache without spending anything; a miss
      // surfaces the original refusal. Like the main path, the submission is
      // counted before dispatching: completed must never exceed submitted.
      ++submitted_;
      auto probe = dispatch(
          [this, sql, epsilon, admit](core::DpStarJoin& engine)
              -> Result<exec::QueryResult> {
            auto bound = engine.binder().BindSql(sql);
            if (!bound.ok()) {
              ++failed_;
              return bound.status();
            }
            if (auto replay =
                    cache_.Lookup(query::CanonicalKey(*bound, epsilon), epsilon)) {
              ++completed_;
              return std::move(*replay);
            }
            ++rejected_budget_;
            return admit;
          });
      if (probe.ok()) {
        return std::move(*probe);
      }
      --submitted_;
      admission_.Release(tenant);  // the probe job will never run
      if (probe.status().code() == StatusCode::kUnavailable) {
        // The probe spent no ε; a full queue is an overload signal, not a
        // budget verdict — let the caller retry for its free replay.
        ++rejected_overload_;
        return FailedFuture(probe.status());
      }
      ++rejected_budget_;
      return FailedFuture(std::move(admit));
    }
    // Nothing was dispatched, and the ledger does not know this tenant
    // (NotFound / invalid name): drop the admission state the probe lazily
    // created too, or arbitrary tenant names on the public query endpoint
    // would grow the controller's map without bound.
    admission_.ReleaseAndForget(tenant);
    ++rejected_budget_;
    return FailedFuture(std::move(admit));
  }
  // Count the submission before dispatching: a fast worker may complete the
  // job before Submit returns, and completed must never exceed submitted.
  ++submitted_;
  auto dispatched = dispatch([this, sql, epsilon, tenant](
                                 core::DpStarJoin& engine) {
    return Execute(engine, sql, epsilon, tenant);
  });
  if (!dispatched.ok()) {
    // Queue full (TrySubmit) or pool shut down: the job will never run, so
    // the admission ε and the in-flight slot flow back.
    --submitted_;
    (void)ledger_.Refund(tenant, epsilon);
    admission_.Release(tenant);
    if (dispatched.status().code() == StatusCode::kUnavailable) {
      ++rejected_overload_;
    } else {
      ++failed_;
    }
    return FailedFuture(dispatched.status());
  }
  return std::move(*dispatched);
}

Result<exec::QueryResult> QueryService::Execute(core::DpStarJoin& engine,
                                                const std::string& sql,
                                                double epsilon,
                                                const std::string& tenant) {
  auto bound = engine.binder().BindSql(sql);
  if (!bound.ok()) {
    // The tenant pays for answers, not for malformed or unbindable queries.
    (void)ledger_.Refund(tenant, epsilon);
    ++failed_;
    return bound.status();
  }
  const std::string key = query::CanonicalKey(*bound, epsilon);
  if (auto replay = cache_.Lookup(key, epsilon)) {
    // Post-processing closure: re-releasing a stored noisy answer is free.
    (void)ledger_.Refund(tenant, epsilon);
    ++completed_;
    return std::move(*replay);
  }
  auto answer = engine.AnswerBound(*bound, epsilon, engine.rng());
  if (!answer.ok()) {
    (void)ledger_.Refund(tenant, epsilon);
    ++failed_;
    return answer.status();
  }
  cache_.Insert(key, *answer);
  ++completed_;
  return std::move(*answer);
}

Result<exec::QueryResult> QueryService::Answer(const std::string& sql, double epsilon,
                                               const std::string& tenant) {
  return Submit(sql, epsilon, tenant).get();
}

Result<double> QueryService::RemainingBudget(const std::string& tenant) const {
  return ledger_.Remaining(tenant);
}

ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load();
  stats.completed = completed_.load();
  stats.failed = failed_.load();
  stats.rejected_budget = rejected_budget_.load();
  stats.rejected_overload = rejected_overload_.load();
  stats.rejected_tenant_limited = rejected_tenant_limited_.load();
  stats.tenant_rate_limited = admission_.total_rate_limited();
  stats.tenant_capped = admission_.total_capped();
  stats.cache = cache_.GetStats();
  stats.plan_cache = plan_cache_->GetStats();
  return stats;
}

void QueryService::Shutdown() { pool_.Shutdown(); }

}  // namespace dpstarj::service
