#include "ssb/distributions.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace dpstarj::ssb {

const char* DistributionKindToString(DistributionKind k) {
  switch (k) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kExponential:
      return "exponential";
    case DistributionKind::kGamma:
      return "gamma";
    case DistributionKind::kGaussianMixture:
      return "gaussian-mixture";
  }
  return "?";
}

DistributionSpec DistributionSpec::Uniform() { return DistributionSpec{}; }

DistributionSpec DistributionSpec::Exponential(double lambda) {
  DistributionSpec d;
  d.kind = DistributionKind::kExponential;
  d.param1 = lambda;
  return d;
}

DistributionSpec DistributionSpec::Gamma(double shape, double scale) {
  DistributionSpec d;
  d.kind = DistributionKind::kGamma;
  d.param1 = shape;
  d.param2 = scale;
  return d;
}

DistributionSpec DistributionSpec::GaussianMixture(std::vector<double> weights,
                                                   std::vector<double> means,
                                                   std::vector<double> stddevs) {
  DistributionSpec d;
  d.kind = DistributionKind::kGaussianMixture;
  d.gm_weights = std::move(weights);
  d.gm_means = std::move(means);
  d.gm_stddevs = std::move(stddevs);
  return d;
}

Status DistributionSpec::Validate() const {
  switch (kind) {
    case DistributionKind::kUniform:
      return Status::OK();
    case DistributionKind::kExponential:
      if (param1 <= 0.0) return Status::InvalidArgument("exponential rate must be > 0");
      return Status::OK();
    case DistributionKind::kGamma:
      if (param1 <= 0.0 || param2 <= 0.0) {
        return Status::InvalidArgument("gamma parameters must be > 0");
      }
      return Status::OK();
    case DistributionKind::kGaussianMixture:
      if (gm_weights.empty() || gm_weights.size() != gm_means.size() ||
          gm_means.size() != gm_stddevs.size()) {
        return Status::InvalidArgument("mixture component vectors must align");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown distribution kind");
}

double DistributionSpec::SampleFraction(Rng* rng) const {
  switch (kind) {
    case DistributionKind::kUniform:
      return rng->Uniform01();
    case DistributionKind::kExponential: {
      // ~99.3% of mass within 5 means.
      double x = rng->Exponential(param1);
      return Clamp(x * param1 / 5.0, 0.0, 1.0 - 1e-12);
    }
    case DistributionKind::kGamma: {
      double x = rng->Gamma(param1, param2);
      double mean = param1 * param2;
      return Clamp(x / (4.0 * mean), 0.0, 1.0 - 1e-12);
    }
    case DistributionKind::kGaussianMixture: {
      double x = rng->GaussianMixture(gm_weights, gm_means, gm_stddevs);
      return Clamp(x, 0.0, 1.0 - 1e-12);
    }
  }
  return 0.0;
}

int64_t DistributionSpec::SampleIndex(int64_t m, Rng* rng) const {
  DPSTARJ_CHECK(m > 0, "domain size must be positive");
  if (kind == DistributionKind::kUniform) return rng->UniformInt(0, m - 1);
  return static_cast<int64_t>(SampleFraction(rng) * static_cast<double>(m));
}

double DistributionSpec::SampleValue(double lo, double hi, Rng* rng) const {
  DPSTARJ_CHECK(lo <= hi, "invalid value range");
  return lo + SampleFraction(rng) * (hi - lo);
}

std::string DistributionSpec::ToString() const {
  switch (kind) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kExponential:
      return Format("exponential(%.3g)", param1);
    case DistributionKind::kGamma:
      return Format("gamma(%.3g,%.3g)", param1, param2);
    case DistributionKind::kGaussianMixture: {
      std::string out = "gm[";
      for (size_t i = 0; i < gm_weights.size(); ++i) {
        if (i) out += ";";
        out += Format("%.2g:N(%.2g,%.2g)", gm_weights[i], gm_means[i], gm_stddevs[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

}  // namespace dpstarj::ssb
