// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Data-skew distributions for the SSB generator (paper Figures 7 & 11): the
// benchmark constructs SSB instances whose attribute values / foreign-key
// fan-outs / measure values follow uniform, exponential, gamma, or
// Gaussian-mixture distributions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace dpstarj::ssb {

/// Distribution families supported by the generator.
enum class DistributionKind : int {
  kUniform = 0,
  kExponential = 1,
  kGamma = 2,
  kGaussianMixture = 3,
};

/// Returns "uniform" / "exponential" / "gamma" / "gaussian-mixture".
const char* DistributionKindToString(DistributionKind k);

/// \brief A distribution over the unit interval, quantized onto finite
/// domains. All parameters live in fraction space so one spec applies to any
/// domain size.
struct DistributionSpec {
  DistributionKind kind = DistributionKind::kUniform;
  /// Exponential: rate λ (mass concentrates near 0; draws are scaled so
  /// ~5 means cover the domain). Gamma: shape. Ignored otherwise.
  double param1 = 1.0;
  /// Gamma: scale θ. Ignored otherwise.
  double param2 = 1.0;
  /// Gaussian mixture: component weights / means / stddevs, means and stddevs
  /// as fractions of the domain.
  std::vector<double> gm_weights;
  std::vector<double> gm_means;
  std::vector<double> gm_stddevs;

  /// Uniform over [0, 1).
  static DistributionSpec Uniform();
  /// Exponential with rate λ.
  static DistributionSpec Exponential(double lambda = 1.0);
  /// Gamma with shape k and scale θ.
  static DistributionSpec Gamma(double shape = 2.0, double scale = 1.0);
  /// Gaussian mixture (fraction space).
  static DistributionSpec GaussianMixture(std::vector<double> weights,
                                          std::vector<double> means,
                                          std::vector<double> stddevs);

  /// \brief Draws a fraction in [0, 1).
  double SampleFraction(Rng* rng) const;

  /// \brief Draws a domain index in [0, m).
  int64_t SampleIndex(int64_t m, Rng* rng) const;

  /// \brief Draws a value in [lo, hi] (continuous, for measures).
  double SampleValue(double lo, double hi, Rng* rng) const;

  /// Validates parameter sanity.
  Status Validate() const;

  /// Debug rendering.
  std::string ToString() const;
};

}  // namespace dpstarj::ssb
