// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The paper's star-join workloads W1 and W2 (§6.1, Figure 9), given as
// predicate matrices over the concatenated domains
// [ Date.year (7) | Customer.region (5) | Supplier.region (5) ] — 17 columns.
// W1 (11 queries) is point-heavy with a few short date ranges; W2 (7 queries)
// has a cumulative (prefix) structure on the date block.

#pragma once

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "query/workload.h"

namespace dpstarj::ssb {

/// The three workload attributes, in block order (year, Customer.region,
/// Supplier.region).
std::vector<query::DimensionAttribute> WorkloadAttributes();

/// The 11×17 W1 matrix exactly as printed in the paper.
const linalg::Matrix& W1Matrix();
/// The 7×17 W2 matrix exactly as printed in the paper.
const linalg::Matrix& W2Matrix();

/// W1 as a workload of counting star-join queries.
Result<query::Workload> WorkloadW1();
/// W2 as a workload of counting star-join queries.
Result<query::Workload> WorkloadW2();

/// Splits a concatenated (7|5|5) workload matrix into per-attribute blocks.
Result<std::vector<linalg::Matrix>> SplitWorkloadMatrix(const linalg::Matrix& m);

}  // namespace dpstarj::ssb
