// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The SSB instance generator. At scale factor 1 the row counts follow the SSB
// spec (Lineorder 6,000,000; Customer 30,000; Supplier 2,000; Part 200,000;
// Date 2,556) and shrink linearly with the scale factor. Three independent
// distribution knobs reproduce the paper's skew experiments (Figures 7 & 11):
//   * attribute_distribution — dimension attribute values (region/..., with
//     hierarchy consistency: nation within region, city within nation);
//   * fanout_distribution — which dimension keys fact rows reference (join
//     fan-out skew, what the output-perturbation baselines are sensitive to);
//   * value_distribution — the revenue/supplycost measures (what SUM queries
//     are sensitive to).

#pragma once

#include <cstdint>

#include "common/result.h"
#include "ssb/distributions.h"
#include "ssb/ssb_schema.h"
#include "storage/catalog.h"

namespace dpstarj::ssb {

/// \brief Generator configuration.
struct SsbOptions {
  /// Linear scale factor (1.0 = the full SSB sizes). Benches default well
  /// below 1 for CI speed; see DPSTARJ_SF.
  double scale_factor = 0.01;
  uint64_t seed = 7;
  DistributionSpec attribute_distribution;
  DistributionSpec fanout_distribution;
  DistributionSpec value_distribution;
  /// Revenue range (SampleValue bounds).
  double revenue_lo = 100.0;
  double revenue_hi = 10000.0;
  /// Supply-cost range.
  double supplycost_lo = 10.0;
  double supplycost_hi = 1000.0;
  /// When positive, the first `planted_heavy_degree` fact rows all reference
  /// custkey 1 — planting a known-degree heavy hitter. Figure 6 uses this to
  /// drive the instance's join sensitivity (and hence GS_Q/LS) explicitly.
  int64_t planted_heavy_degree = 0;
};

/// \brief Row counts implied by a scale factor.
struct SsbSizes {
  int64_t lineorder = 0;
  int64_t customer = 0;
  int64_t supplier = 0;
  int64_t part = 0;
  int64_t date = kNumDays;

  static SsbSizes ForScaleFactor(double sf);
};

/// \brief Generates a full SSB catalog (five tables + four foreign keys).
/// The result passes Catalog::ValidateIntegrity.
Result<storage::Catalog> GenerateSsb(const SsbOptions& options);

}  // namespace dpstarj::ssb
