#include "ssb/ssb_queries.h"

#include "common/string_util.h"
#include "ssb/ssb_schema.h"

namespace dpstarj::ssb {

using query::AggregateKind;
using query::Predicate;
using query::StarJoinQuery;
using storage::Value;

namespace {

StarJoinQuery BaseQuery(std::string name, AggregateKind agg) {
  StarJoinQuery q;
  q.name = std::move(name);
  q.fact_table = kLineorder;
  q.aggregate = agg;
  if (agg == AggregateKind::kSum) {
    q.measure_terms.push_back({"revenue", 1.0});
  }
  return q;
}

// ---- predicate bundles shared by the c/s/g families -------------------------

void AddQ1Predicates(StarJoinQuery* q) {
  q->joined_tables = {kDate};
  q->predicates.push_back(Predicate::Point(kDate, "year", Value(int64_t{1993})));
}

void AddQ2Predicates(StarJoinQuery* q) {
  q->joined_tables = {kDate, kPart, kSupplier};
  q->predicates.push_back(Predicate::Point(kPart, "category", Value("MFGR#12")));
  q->predicates.push_back(Predicate::Point(kSupplier, "region", Value("AMERICA")));
}

void AddQ3Predicates(StarJoinQuery* q) {
  q->joined_tables = {kDate, kCustomer, kSupplier};
  q->predicates.push_back(Predicate::Point(kCustomer, "region", Value("ASIA")));
  q->predicates.push_back(Predicate::Point(kSupplier, "region", Value("ASIA")));
  q->predicates.push_back(
      Predicate::Range(kDate, "year", Value(int64_t{1992}), Value(int64_t{1997})));
}

void AddQ4Predicates(StarJoinQuery* q) {
  q->joined_tables = {kDate, kCustomer, kPart, kSupplier};
  q->predicates.push_back(Predicate::Point(kCustomer, "region", Value("AMERICA")));
  q->predicates.push_back(
      Predicate::Point(kSupplier, "nation", Value("UNITED STATES")));
  q->predicates.push_back(
      Predicate::Range(kDate, "year", Value(int64_t{1997}), Value(int64_t{1998})));
  q->predicates.push_back(
      Predicate::PointPair(kPart, "mfgr", Value("MFGR#1"), Value("MFGR#2")));
}

}  // namespace

const std::vector<std::string>& AllQueryNames() {
  static const std::vector<std::string> names = {"Qc1", "Qc2", "Qc3", "Qc4", "Qs2",
                                                 "Qs3", "Qs4", "Qg2", "Qg4"};
  return names;
}

Result<StarJoinQuery> GetQuery(const std::string& name) {
  if (name == "Qc1") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kCount);
    AddQ1Predicates(&q);
    return q;
  }
  if (name == "Qc2") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kCount);
    AddQ2Predicates(&q);
    return q;
  }
  if (name == "Qc3") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kCount);
    AddQ3Predicates(&q);
    return q;
  }
  if (name == "Qc4") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kCount);
    AddQ4Predicates(&q);
    return q;
  }
  if (name == "Qs2") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kSum);
    AddQ2Predicates(&q);
    return q;
  }
  if (name == "Qs3") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kSum);
    AddQ3Predicates(&q);
    return q;
  }
  if (name == "Qs4") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kSum);
    AddQ4Predicates(&q);
    return q;
  }
  if (name == "Qg2") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kSum);
    AddQ2Predicates(&q);
    q.group_by = {{kDate, "year"}, {kPart, "brand"}};
    q.order_by = q.group_by;
    return q;
  }
  if (name == "Qg4") {
    StarJoinQuery q = BaseQuery(name, AggregateKind::kSum);
    q.measure_terms = {{"revenue", 1.0}, {"supplycost", -1.0}};
    AddQ4Predicates(&q);
    q.group_by = {{kDate, "year"}, {kPart, "category"}};
    q.order_by = q.group_by;
    return q;
  }
  return Status::NotFound(Format("unknown SSB query '%s'", name.c_str()));
}

Result<std::string> GetQuerySql(const std::string& name) {
  // Shared WHERE fragments (parser normalizes them back to the object form).
  const std::string j_date = "Lineorder.orderdate = Date.datekey";
  const std::string j_cust = "Lineorder.custkey = Customer.custkey";
  const std::string j_supp = "Lineorder.suppkey = Supplier.suppkey";
  const std::string j_part = "Lineorder.partkey = Part.partkey";

  if (name == "Qc1") {
    return std::string(
        "SELECT count(*) FROM Date, Lineorder WHERE " + j_date +
        " AND Date.year = 1993;");
  }
  if (name == "Qc2" || name == "Qs2") {
    std::string sel = (name == "Qc2") ? "count(*)" : "sum(Lineorder.revenue)";
    return "SELECT " + sel + " FROM Date, Lineorder, Part, Supplier WHERE " + j_supp +
           " AND " + j_part + " AND " + j_date +
           " AND Part.category = 'MFGR#12' AND Supplier.region = 'AMERICA';";
  }
  if (name == "Qc3" || name == "Qs3") {
    std::string sel = (name == "Qc3") ? "count(*)" : "sum(Lineorder.revenue)";
    return "SELECT " + sel + " FROM Date, Lineorder, Customer, Supplier WHERE " +
           j_supp + " AND " + j_cust + " AND " + j_date +
           " AND Customer.region = 'ASIA' AND Supplier.region = 'ASIA'"
           " AND Date.year BETWEEN 1992 AND 1997;";
  }
  if (name == "Qc4" || name == "Qs4") {
    std::string sel = (name == "Qc4") ? "count(*)" : "sum(Lineorder.revenue)";
    return "SELECT " + sel + " FROM Date, Lineorder, Customer, Part, Supplier WHERE " +
           j_supp + " AND " + j_part + " AND " + j_cust + " AND " + j_date +
           " AND Customer.region = 'AMERICA'"
           " AND Supplier.nation = 'UNITED STATES'"
           " AND Date.year BETWEEN 1997 AND 1998"
           " AND Part.mfgr = 'MFGR#1' OR Part.mfgr = 'MFGR#2';";
  }
  if (name == "Qg2") {
    return std::string(
        "SELECT sum(Lineorder.revenue), Date.year, Part.brand"
        " FROM Date, Lineorder, Part, Supplier WHERE " +
        j_supp + " AND " + j_part + " AND " + j_date +
        " AND Part.category = 'MFGR#12' AND Supplier.region = 'AMERICA'"
        " GROUP BY Date.year, Part.brand ORDER BY Date.year, Part.brand;");
  }
  if (name == "Qg4") {
    return std::string(
        "SELECT sum(Lineorder.revenue - Lineorder.supplycost), Date.year,"
        " Part.category"
        " FROM Date, Lineorder, Customer, Part, Supplier WHERE " +
        j_supp + " AND " + j_part + " AND " + j_cust + " AND " + j_date +
        " AND Customer.region = 'AMERICA'"
        " AND Supplier.nation = 'UNITED STATES'"
        " AND Date.year BETWEEN 1997 AND 1998"
        " AND Part.mfgr = 'MFGR#1' OR Part.mfgr = 'MFGR#2'"
        " GROUP BY Date.year, Part.category ORDER BY Date.year, Part.category;");
  }
  return Status::NotFound(Format("unknown SSB query '%s'", name.c_str()));
}

std::vector<DomainSizeVariant> DomainSizeQueries() {
  std::vector<DomainSizeVariant> out;

  auto make = [](std::string label, int64_t d1, int64_t d2, Predicate p1,
                 Predicate p2, std::vector<std::string> joined) {
    DomainSizeVariant v;
    v.label = std::move(label);
    v.dom1 = d1;
    v.dom2 = d2;
    v.query.name = "Qdom_" + v.label;
    v.query.fact_table = kLineorder;
    v.query.aggregate = AggregateKind::kCount;
    v.query.joined_tables = std::move(joined);
    v.query.predicates.push_back(std::move(p1));
    v.query.predicates.push_back(std::move(p2));
    return v;
  };

  out.push_back(make(
      "5x7", 5, 7, Predicate::Point(kSupplier, "region", Value("ASIA")),
      Predicate::Range(kDate, "year", Value(int64_t{1993}), Value(int64_t{1995})),
      {kSupplier, kDate}));
  out.push_back(make(
      "5x100", 5, 100, Predicate::Point(kSupplier, "region", Value("ASIA")),
      Predicate::Range(kCustomer, "zip", Value(int64_t{10}), Value(int64_t{40})),
      {kSupplier, kCustomer}));
  out.push_back(make(
      "250x100", 250, 100,
      Predicate::Range(kSupplier, "city", Value(Cities()[100]), Value(Cities()[140])),
      Predicate::Range(kCustomer, "zip", Value(int64_t{10}), Value(int64_t{40})),
      {kSupplier, kCustomer}));
  out.push_back(make(
      "5x366", 5, 366, Predicate::Point(kSupplier, "region", Value("ASIA")),
      Predicate::Range(kDate, "daynuminyear", Value(int64_t{50}), Value(int64_t{150})),
      {kSupplier, kDate}));
  out.push_back(make(
      "250x366", 250, 366,
      Predicate::Range(kSupplier, "city", Value(Cities()[100]), Value(Cities()[140])),
      Predicate::Range(kDate, "daynuminyear", Value(int64_t{50}), Value(int64_t{150})),
      {kSupplier, kDate}));
  return out;
}

}  // namespace dpstarj::ssb
