#include "ssb/workloads.h"

#include "common/status.h"
#include "ssb/ssb_schema.h"

namespace dpstarj::ssb {

namespace {

linalg::Matrix BuildW1() {
  auto m = linalg::Matrix::FromRows({
      {1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0},
      {0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0},
      {0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0},
      {0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0},
      {0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0},
  });
  DPSTARJ_CHECK(m.ok(), "W1 literal must be rectangular");
  return std::move(m).ValueOrDie();
}

linalg::Matrix BuildW2() {
  auto m = linalg::Matrix::FromRows({
      {1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0},
      {1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0},
      {1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0},
      {1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0},
      {1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0},
      {1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0},
      {1, 1, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0},
  });
  DPSTARJ_CHECK(m.ok(), "W2 literal must be rectangular");
  return std::move(m).ValueOrDie();
}

}  // namespace

std::vector<query::DimensionAttribute> WorkloadAttributes() {
  return {
      {kDate, "year", YearDomain()},
      {kCustomer, "region", RegionDomain()},
      {kSupplier, "region", RegionDomain()},
  };
}

const linalg::Matrix& W1Matrix() {
  static const linalg::Matrix m = BuildW1();
  return m;
}

const linalg::Matrix& W2Matrix() {
  static const linalg::Matrix m = BuildW2();
  return m;
}

Result<std::vector<linalg::Matrix>> SplitWorkloadMatrix(const linalg::Matrix& m) {
  const int blocks[3] = {7, 5, 5};
  if (m.cols() != blocks[0] + blocks[1] + blocks[2]) {
    return Status::InvalidArgument("workload matrix must have 17 columns");
  }
  std::vector<linalg::Matrix> out;
  int offset = 0;
  for (int b : blocks) {
    linalg::Matrix block(m.rows(), b);
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < b; ++c) block.At(r, c) = m.At(r, offset + c);
    }
    out.push_back(std::move(block));
    offset += b;
  }
  return out;
}

Result<query::Workload> WorkloadW1() {
  DPSTARJ_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> blocks,
                           SplitWorkloadMatrix(W1Matrix()));
  return query::WorkloadFromMatrices("W1", kLineorder, WorkloadAttributes(), blocks);
}

Result<query::Workload> WorkloadW2() {
  DPSTARJ_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> blocks,
                           SplitWorkloadMatrix(W2Matrix()));
  return query::WorkloadFromMatrices("W2", kLineorder, WorkloadAttributes(), blocks);
}

}  // namespace dpstarj::ssb
