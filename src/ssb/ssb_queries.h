// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The paper's nine SSB star-join queries (§6.1, appendix A.1): counting
// queries Qc1–Qc4, sum queries Qs2–Qs4, group-by queries Qg2/Qg4 — both as
// StarJoinQuery objects and as SQL text (exercising the parser front-end).
// Also the Figure 8 two-dimension domain-size variants.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/star_query.h"

namespace dpstarj::ssb {

/// The nine query names: Qc1..Qc4, Qs2..Qs4, Qg2, Qg4.
const std::vector<std::string>& AllQueryNames();

/// Builds one of the nine queries by name.
Result<query::StarJoinQuery> GetQuery(const std::string& name);

/// The same query as SQL text against the generated schema.
Result<std::string> GetQuerySql(const std::string& name);

/// \brief One Figure 8 variant: a 2-dimension counting query whose predicate
/// domains have the given sizes.
struct DomainSizeVariant {
  std::string label;  ///< e.g. "5x366"
  int64_t dom1 = 0;
  int64_t dom2 = 0;
  query::StarJoinQuery query;
};

/// The five Figure 8 variants: 5×7, 5×10², 250×10², 5×366, 250×366.
std::vector<DomainSizeVariant> DomainSizeQueries();

}  // namespace dpstarj::ssb
