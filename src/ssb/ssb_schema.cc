#include "ssb/ssb_schema.h"

#include "common/string_util.h"

namespace dpstarj::ssb {

namespace {

std::vector<std::string> BuildRegions() {
  return {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
}

std::vector<std::string> BuildNations() {
  // Region-major: nations[i] belongs to Regions()[i / kNationsPerRegion].
  return {
      // AFRICA
      "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
      // AMERICA
      "UNITED STATES", "CANADA", "BRAZIL", "ARGENTINA", "PERU",
      // ASIA
      "CHINA", "INDIA", "JAPAN", "INDONESIA", "VIETNAM",
      // EUROPE
      "FRANCE", "GERMANY", "RUSSIA", "ROMANIA", "UNITED KINGDOM",
      // MIDDLE EAST
      "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",
  };
}

std::vector<std::string> BuildCities() {
  std::vector<std::string> cities;
  cities.reserve(static_cast<size_t>(kNationsPerRegion) * kNumRegions *
                 kCitiesPerNation);
  for (const auto& nation : BuildNations()) {
    // SSB style: first 9 chars of the nation plus a digit.
    std::string stem = nation.substr(0, 9);
    for (int i = 0; i < kCitiesPerNation; ++i) {
      cities.push_back(Format("%s#%d", stem.c_str(), i));
    }
  }
  return cities;
}

std::vector<std::string> BuildMfgrs() {
  std::vector<std::string> out;
  for (int m = 1; m <= kNumMfgrs; ++m) out.push_back(Format("MFGR#%d", m));
  return out;
}

std::vector<std::string> BuildCategories() {
  std::vector<std::string> out;
  for (int m = 1; m <= kNumMfgrs; ++m) {
    for (int c = 1; c <= kCategoriesPerMfgr; ++c) {
      out.push_back(Format("MFGR#%d%d", m, c));
    }
  }
  return out;
}

std::vector<std::string> BuildBrands() {
  std::vector<std::string> out;
  for (int m = 1; m <= kNumMfgrs; ++m) {
    for (int c = 1; c <= kCategoriesPerMfgr; ++c) {
      for (int b = 1; b <= kBrandsPerCategory; ++b) {
        out.push_back(Format("MFGR#%d%d%02d", m, c, b));
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& Regions() {
  static const std::vector<std::string> v = BuildRegions();
  return v;
}
const std::vector<std::string>& Nations() {
  static const std::vector<std::string> v = BuildNations();
  return v;
}
const std::vector<std::string>& Cities() {
  static const std::vector<std::string> v = BuildCities();
  return v;
}
const std::vector<std::string>& Mfgrs() {
  static const std::vector<std::string> v = BuildMfgrs();
  return v;
}
const std::vector<std::string>& Categories() {
  static const std::vector<std::string> v = BuildCategories();
  return v;
}
const std::vector<std::string>& Brands() {
  static const std::vector<std::string> v = BuildBrands();
  return v;
}

storage::AttributeDomain RegionDomain() {
  return storage::AttributeDomain::Categorical(Regions());
}
storage::AttributeDomain NationDomain() {
  return storage::AttributeDomain::Categorical(Nations());
}
storage::AttributeDomain CityDomain() {
  return storage::AttributeDomain::Categorical(Cities());
}
storage::AttributeDomain ZipDomain() {
  return storage::AttributeDomain::IntRange(0, kNumZip - 1);
}
storage::AttributeDomain MfgrDomain() {
  return storage::AttributeDomain::Categorical(Mfgrs());
}
storage::AttributeDomain CategoryDomain() {
  return storage::AttributeDomain::Categorical(Categories());
}
storage::AttributeDomain BrandDomain() {
  return storage::AttributeDomain::Categorical(Brands());
}
storage::AttributeDomain YearDomain() {
  return storage::AttributeDomain::IntRange(kYearLo, kYearHi);
}
storage::AttributeDomain MonthDomain() {
  return storage::AttributeDomain::IntRange(1, 12);
}
storage::AttributeDomain DayNumInYearDomain() {
  return storage::AttributeDomain::IntRange(1, 366);
}

storage::Schema DateSchema() {
  using storage::Field;
  using storage::ValueType;
  return storage::Schema({
      Field("datekey", ValueType::kInt64),
      Field("year", ValueType::kInt64, YearDomain()),
      Field("month", ValueType::kInt64, MonthDomain()),
      Field("daynuminyear", ValueType::kInt64, DayNumInYearDomain()),
      Field("dayofweek", ValueType::kInt64,
            storage::AttributeDomain::IntRange(1, 7)),
  });
}

storage::Schema CustomerSchema() {
  using storage::Field;
  using storage::ValueType;
  return storage::Schema({
      Field("custkey", ValueType::kInt64),
      Field("region", ValueType::kString, RegionDomain()),
      Field("nation", ValueType::kString, NationDomain()),
      Field("city", ValueType::kString, CityDomain()),
      Field("zip", ValueType::kInt64, ZipDomain()),
      Field("address", ValueType::kString),
  });
}

storage::Schema SupplierSchema() {
  using storage::Field;
  using storage::ValueType;
  return storage::Schema({
      Field("suppkey", ValueType::kInt64),
      Field("region", ValueType::kString, RegionDomain()),
      Field("nation", ValueType::kString, NationDomain()),
      Field("city", ValueType::kString, CityDomain()),
      Field("address", ValueType::kString),
  });
}

storage::Schema PartSchema() {
  using storage::Field;
  using storage::ValueType;
  return storage::Schema({
      Field("partkey", ValueType::kInt64),
      Field("mfgr", ValueType::kString, MfgrDomain()),
      Field("category", ValueType::kString, CategoryDomain()),
      Field("brand", ValueType::kString, BrandDomain()),
  });
}

storage::Schema LineorderSchema() {
  using storage::Field;
  using storage::ValueType;
  return storage::Schema({
      Field("orderkey", ValueType::kInt64),
      Field("custkey", ValueType::kInt64),
      Field("partkey", ValueType::kInt64),
      Field("suppkey", ValueType::kInt64),
      Field("orderdate", ValueType::kInt64),
      Field("quantity", ValueType::kInt64),
      Field("revenue", ValueType::kDouble),
      Field("supplycost", ValueType::kDouble),
  });
}

}  // namespace dpstarj::ssb
