// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The Star Schema Benchmark schema (O'Neil et al.; paper §6): fact table
// Lineorder plus dimensions Date, Customer, Supplier, Part. Every dimension
// attribute that can carry a predicate declares its finite ordered domain —
// the domains are what PM's sensitivity depends on, so they match the paper:
//   Date.year 7, Date.month 12, Date.daynuminyear 366,
//   Customer/Supplier region 5, nation 25, city 250, Customer.zip 100,
//   Part mfgr 5, category 25, brand 1000.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/domain.h"
#include "storage/schema.h"

namespace dpstarj::ssb {

/// Table names.
inline constexpr const char* kLineorder = "Lineorder";
inline constexpr const char* kDate = "Date";
inline constexpr const char* kCustomer = "Customer";
inline constexpr const char* kSupplier = "Supplier";
inline constexpr const char* kPart = "Part";

/// Domain sizes (the numbers quoted in the paper's appendix A.1).
inline constexpr int kNumRegions = 5;
inline constexpr int kNationsPerRegion = 5;   // 25 nations
inline constexpr int kCitiesPerNation = 10;   // 250 cities
inline constexpr int kNumZip = 100;           // Customer.zip (Figure 8's 10² domain)
inline constexpr int kNumMfgrs = 5;
inline constexpr int kCategoriesPerMfgr = 5;  // 25 categories
inline constexpr int kBrandsPerCategory = 40; // 1000 brands
inline constexpr int kYearLo = 1992;
inline constexpr int kYearHi = 1998;          // 7 years
inline constexpr int kNumDays = 2556;         // 7 years of date keys

/// The five SSB regions, in domain order.
const std::vector<std::string>& Regions();
/// The 25 nations, region-major (nation i belongs to region i/5).
const std::vector<std::string>& Nations();
/// The 250 cities, nation-major (city i belongs to nation i/10).
const std::vector<std::string>& Cities();
/// The 5 manufacturers "MFGR#1".."MFGR#5".
const std::vector<std::string>& Mfgrs();
/// The 25 categories "MFGR#11".."MFGR#55", mfgr-major.
const std::vector<std::string>& Categories();
/// The 1000 brands "MFGR#1101".., category-major.
const std::vector<std::string>& Brands();

/// Domains for the predicate attributes.
storage::AttributeDomain RegionDomain();
storage::AttributeDomain NationDomain();
storage::AttributeDomain CityDomain();
storage::AttributeDomain ZipDomain();
storage::AttributeDomain MfgrDomain();
storage::AttributeDomain CategoryDomain();
storage::AttributeDomain BrandDomain();
storage::AttributeDomain YearDomain();
storage::AttributeDomain MonthDomain();
storage::AttributeDomain DayNumInYearDomain();

/// Schemas (with domains attached to predicate attributes).
storage::Schema DateSchema();
storage::Schema CustomerSchema();
storage::Schema SupplierSchema();
storage::Schema PartSchema();
storage::Schema LineorderSchema();

}  // namespace dpstarj::ssb
