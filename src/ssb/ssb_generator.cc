#include "ssb/ssb_generator.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace dpstarj::ssb {

SsbSizes SsbSizes::ForScaleFactor(double sf) {
  SsbSizes s;
  s.lineorder = std::max<int64_t>(1, static_cast<int64_t>(6000000.0 * sf));
  s.customer = std::max<int64_t>(1, static_cast<int64_t>(30000.0 * sf));
  s.supplier = std::max<int64_t>(1, static_cast<int64_t>(2000.0 * sf));
  s.part = std::max<int64_t>(1, static_cast<int64_t>(200000.0 * sf));
  s.date = kNumDays;
  return s;
}

namespace {

Result<std::shared_ptr<storage::Table>> GenerateDate() {
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table,
                           storage::Table::Create(kDate, DateSchema(), "datekey"));
  table->Reserve(kNumDays);
  auto* datekey = table->mutable_column(0);
  auto* year = table->mutable_column(1);
  auto* month = table->mutable_column(2);
  auto* daynum = table->mutable_column(3);
  auto* dow = table->mutable_column(4);
  for (int64_t d = 0; d < kNumDays; ++d) {
    int64_t y = kYearLo + d / 365;
    if (y > kYearHi) y = kYearHi;
    int64_t day_in_year = d % 365;  // 0-based
    datekey->AppendInt64(d + 1);
    year->AppendInt64(y);
    month->AppendInt64(day_in_year / 31 + 1);  // 1..12
    daynum->AppendInt64(day_in_year + 1);      // 1..365
    dow->AppendInt64(d % 7 + 1);
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(kNumDays));
  return table;
}

Result<std::shared_ptr<storage::Table>> GenerateCustomer(const SsbOptions& opt,
                                                         int64_t rows, Rng* rng) {
  DPSTARJ_ASSIGN_OR_RETURN(
      std::shared_ptr<storage::Table> table,
      storage::Table::Create(kCustomer, CustomerSchema(), "custkey"));
  table->Reserve(rows);
  const DistributionSpec& dist = opt.attribute_distribution;
  auto* custkey = table->mutable_column(0);
  auto* region = table->mutable_column(1);
  auto* nation = table->mutable_column(2);
  auto* city = table->mutable_column(3);
  auto* zip = table->mutable_column(4);
  auto* address = table->mutable_column(5);
  const int64_t num_nations = kNumRegions * kNationsPerRegion;
  for (int64_t i = 0; i < rows; ++i) {
    // Coverage seeding: the first 25 rows cycle through the nations so every
    // region/nation predicate has support even at tiny scale factors (real
    // SSB sizes make this a no-op statistically).
    int64_t n = i < num_nations
                    ? i
                    : dist.SampleIndex(kNumRegions, rng) * kNationsPerRegion +
                          dist.SampleIndex(kNationsPerRegion, rng);
    int64_t r = n / kNationsPerRegion;
    int64_t c = n * kCitiesPerNation + dist.SampleIndex(kCitiesPerNation, rng);
    custkey->AppendInt64(i + 1);
    region->AppendString(Regions()[static_cast<size_t>(r)]);
    nation->AppendString(Nations()[static_cast<size_t>(n)]);
    city->AppendString(Cities()[static_cast<size_t>(c)]);
    zip->AppendInt64(dist.SampleIndex(kNumZip, rng));
    address->AppendString(Format("addr_%lld", static_cast<long long>(i + 1)));
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(rows));
  return table;
}

Result<std::shared_ptr<storage::Table>> GenerateSupplier(const SsbOptions& opt,
                                                         int64_t rows, Rng* rng) {
  DPSTARJ_ASSIGN_OR_RETURN(
      std::shared_ptr<storage::Table> table,
      storage::Table::Create(kSupplier, SupplierSchema(), "suppkey"));
  table->Reserve(rows);
  const DistributionSpec& dist = opt.attribute_distribution;
  auto* suppkey = table->mutable_column(0);
  auto* region = table->mutable_column(1);
  auto* nation = table->mutable_column(2);
  auto* city = table->mutable_column(3);
  auto* address = table->mutable_column(4);
  const int64_t num_nations = kNumRegions * kNationsPerRegion;
  for (int64_t i = 0; i < rows; ++i) {
    int64_t n = i < num_nations
                    ? i
                    : dist.SampleIndex(kNumRegions, rng) * kNationsPerRegion +
                          dist.SampleIndex(kNationsPerRegion, rng);
    int64_t r = n / kNationsPerRegion;
    int64_t c = n * kCitiesPerNation + dist.SampleIndex(kCitiesPerNation, rng);
    suppkey->AppendInt64(i + 1);
    region->AppendString(Regions()[static_cast<size_t>(r)]);
    nation->AppendString(Nations()[static_cast<size_t>(n)]);
    city->AppendString(Cities()[static_cast<size_t>(c)]);
    address->AppendString(Format("saddr_%lld", static_cast<long long>(i + 1)));
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(rows));
  return table;
}

Result<std::shared_ptr<storage::Table>> GeneratePart(const SsbOptions& opt,
                                                     int64_t rows, Rng* rng) {
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table,
                           storage::Table::Create(kPart, PartSchema(), "partkey"));
  table->Reserve(rows);
  const DistributionSpec& dist = opt.attribute_distribution;
  auto* partkey = table->mutable_column(0);
  auto* mfgr = table->mutable_column(1);
  auto* category = table->mutable_column(2);
  auto* brand = table->mutable_column(3);
  const int64_t num_categories = kNumMfgrs * kCategoriesPerMfgr;
  for (int64_t i = 0; i < rows; ++i) {
    // Coverage seeding over categories, mirroring the customer/supplier
    // nation cycling.
    int64_t c = i < num_categories
                    ? i
                    : dist.SampleIndex(kNumMfgrs, rng) * kCategoriesPerMfgr +
                          dist.SampleIndex(kCategoriesPerMfgr, rng);
    int64_t m = c / kCategoriesPerMfgr;
    int64_t b = c * kBrandsPerCategory + dist.SampleIndex(kBrandsPerCategory, rng);
    partkey->AppendInt64(i + 1);
    mfgr->AppendString(Mfgrs()[static_cast<size_t>(m)]);
    category->AppendString(Categories()[static_cast<size_t>(c)]);
    brand->AppendString(Brands()[static_cast<size_t>(b)]);
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(rows));
  return table;
}

Result<std::shared_ptr<storage::Table>> GenerateLineorder(const SsbOptions& opt,
                                                          const SsbSizes& sizes,
                                                          Rng* rng) {
  DPSTARJ_ASSIGN_OR_RETURN(
      std::shared_ptr<storage::Table> table,
      storage::Table::Create(kLineorder, LineorderSchema()));
  table->Reserve(sizes.lineorder);
  const DistributionSpec& fanout = opt.fanout_distribution;
  const DistributionSpec& value = opt.value_distribution;
  auto* orderkey = table->mutable_column(0);
  auto* custkey = table->mutable_column(1);
  auto* partkey = table->mutable_column(2);
  auto* suppkey = table->mutable_column(3);
  auto* orderdate = table->mutable_column(4);
  auto* quantity = table->mutable_column(5);
  auto* revenue = table->mutable_column(6);
  auto* supplycost = table->mutable_column(7);
  int64_t planted = std::min(opt.planted_heavy_degree, sizes.lineorder);
  for (int64_t i = 0; i < sizes.lineorder; ++i) {
    bool heavy = i < planted;
    orderkey->AppendInt64(i + 1);
    // Planted rows reference key 1 of *every* dimension, so the heavy-hitter
    // degree is visible regardless of which relation a scenario marks private.
    custkey->AppendInt64(heavy ? 1 : fanout.SampleIndex(sizes.customer, rng) + 1);
    partkey->AppendInt64(heavy ? 1 : fanout.SampleIndex(sizes.part, rng) + 1);
    suppkey->AppendInt64(heavy ? 1 : fanout.SampleIndex(sizes.supplier, rng) + 1);
    orderdate->AppendInt64(heavy ? 1 : fanout.SampleIndex(sizes.date, rng) + 1);
    quantity->AppendInt64(rng->UniformInt(1, 50));
    revenue->AppendDouble(value.SampleValue(opt.revenue_lo, opt.revenue_hi, rng));
    supplycost->AppendDouble(
        value.SampleValue(opt.supplycost_lo, opt.supplycost_hi, rng));
  }
  DPSTARJ_RETURN_NOT_OK(table->FinishBulkAppend(sizes.lineorder));
  return table;
}

}  // namespace

Result<storage::Catalog> GenerateSsb(const SsbOptions& options) {
  if (options.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  DPSTARJ_RETURN_NOT_OK(options.attribute_distribution.Validate());
  DPSTARJ_RETURN_NOT_OK(options.fanout_distribution.Validate());
  DPSTARJ_RETURN_NOT_OK(options.value_distribution.Validate());

  Rng rng(options.seed);
  SsbSizes sizes = SsbSizes::ForScaleFactor(options.scale_factor);

  storage::Catalog catalog;
  DPSTARJ_ASSIGN_OR_RETURN(auto date, GenerateDate());
  DPSTARJ_ASSIGN_OR_RETURN(auto customer, GenerateCustomer(options, sizes.customer,
                                                           &rng));
  DPSTARJ_ASSIGN_OR_RETURN(auto supplier, GenerateSupplier(options, sizes.supplier,
                                                           &rng));
  DPSTARJ_ASSIGN_OR_RETURN(auto part, GeneratePart(options, sizes.part, &rng));
  DPSTARJ_ASSIGN_OR_RETURN(auto lineorder, GenerateLineorder(options, sizes, &rng));

  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(date)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(customer)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(supplier)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(part)));
  DPSTARJ_RETURN_NOT_OK(catalog.AddTable(std::move(lineorder)));

  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kLineorder, "custkey", kCustomer, "custkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kLineorder, "partkey", kPart, "partkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kLineorder, "suppkey", kSupplier, "suppkey"}));
  DPSTARJ_RETURN_NOT_OK(
      catalog.AddForeignKey({kLineorder, "orderdate", kDate, "datekey"}));
  return catalog;
}

}  // namespace dpstarj::ssb
