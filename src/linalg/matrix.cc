#include "linalg/matrix.h"

#include <cmath>

#include "common/string_util.h"

namespace dpstarj::linalg {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0.0) {
  DPSTARJ_CHECK(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Result<Matrix> Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix(0, 0);
  size_t cols = rows[0].size();
  for (const auto& r : rows) {
    if (r.size() != cols) {
      return Status::InvalidArgument("FromRows: ragged row lengths");
    }
  }
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(cols));
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.At(static_cast<int>(i), static_cast<int>(j)) = rows[i][j];
    }
  }
  return m;
}

double& Matrix::At(int r, int c) {
  DPSTARJ_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index OOB");
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Matrix::At(int r, int c) const {
  DPSTARJ_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index OOB");
  return data_[static_cast<size_t>(r) * cols_ + c];
}

std::vector<double> Matrix::Row(int r) const {
  DPSTARJ_CHECK(r >= 0 && r < rows_, "row index OOB");
  return std::vector<double>(data_.begin() + static_cast<long>(r) * cols_,
                             data_.begin() + static_cast<long>(r + 1) * cols_);
}

Status Matrix::SetRow(int r, const std::vector<double>& values) {
  if (r < 0 || r >= rows_) return Status::OutOfRange("row index OOB");
  if (static_cast<int>(values.size()) != cols_) {
    return Status::InvalidArgument("SetRow: wrong arity");
  }
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<long>(r) * cols_);
  return Status::OK();
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Result<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        Format("matmul shape mismatch: %dx%d * %dx%d", rows_, cols_, other.rows_,
               other.cols_));
  }
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Result<std::vector<double>> Matrix::MultiplyVector(const std::vector<double>& v) const {
  if (static_cast<int>(v.size()) != cols_) {
    return Status::InvalidArgument("matvec shape mismatch");
  }
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int j = 0; j < cols_; ++j) s += At(i, j) * v[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = s;
  }
  return out;
}

Result<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("add shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Scaled(double s) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= s;
  return out;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) return Status::InvalidArgument("inverse requires square matrix");
  int n = rows_;
  // Augmented [A | I], Gauss-Jordan with partial pivoting.
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    double best = std::abs(a.At(col, col));
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a.At(r, col)) > best) {
        best = std::abs(a.At(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) return Status::InvalidArgument("matrix is singular");
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a.At(pivot, c), a.At(col, c));
        std::swap(inv.At(pivot, c), inv.At(col, c));
      }
    }
    double d = a.At(col, col);
    for (int c = 0; c < n; ++c) {
      a.At(col, c) /= d;
      inv.At(col, c) /= d;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      double f = a.At(r, col);
      if (f == 0.0) continue;
      for (int c = 0; c < n; ++c) {
        a.At(r, c) -= f * a.At(col, c);
        inv.At(r, c) -= f * inv.At(col, c);
      }
    }
  }
  return inv;
}

namespace {
Result<Matrix> RidgeInverse(const Matrix& gram) {
  auto inv = gram.Inverse();
  if (inv.ok()) return inv;
  // Tikhonov fallback for numerically singular Gram matrices.
  double trace = 0.0;
  for (int i = 0; i < gram.rows(); ++i) trace += gram.At(i, i);
  double lambda = 1e-10 * (trace > 0 ? trace : 1.0);
  Matrix ridged = gram;
  for (int i = 0; i < gram.rows(); ++i) ridged.At(i, i) += lambda;
  return ridged.Inverse();
}
}  // namespace

Result<Matrix> Matrix::PseudoInverse() const {
  if (rows_ == 0 || cols_ == 0) return Status::InvalidArgument("empty matrix");
  Matrix t = Transposed();
  if (rows_ >= cols_) {
    // A⁺ = (AᵀA)⁻¹Aᵀ
    DPSTARJ_ASSIGN_OR_RETURN(Matrix gram, t.Multiply(*this));
    DPSTARJ_ASSIGN_OR_RETURN(Matrix gram_inv, RidgeInverse(gram));
    return gram_inv.Multiply(t);
  }
  // A⁺ = Aᵀ(AAᵀ)⁻¹
  DPSTARJ_ASSIGN_OR_RETURN(Matrix gram, Multiply(t));
  DPSTARJ_ASSIGN_OR_RETURN(Matrix gram_inv, RidgeInverse(gram));
  return t.Multiply(gram_inv);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::MaxColumnAbsSum() const {
  double best = 0.0;
  for (int c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (int r = 0; r < rows_; ++r) s += std::abs(At(r, c));
    best = std::max(best, s);
  }
  return best;
}

std::string Matrix::ToString() const {
  std::string out = Format("Matrix %dx%d\n", rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out += Format("%8.3f ", At(r, c));
    }
    out += "\n";
  }
  return out;
}

}  // namespace dpstarj::linalg
