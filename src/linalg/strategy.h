// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Strategy matrices for the Workload Decomposition mechanism (Algorithm 4).
// A strategy over a domain of size m is a set of *interval* queries — each
// strategy row must remain a valid predicate (point or range constraint) so
// it can be perturbed by the Predicate Mechanism for an Attribute (PMA).

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace dpstarj::linalg {

/// \brief A strategy: an ordered list of closed index intervals [lo, hi] over
/// a finite domain {0, ..., domain_size-1}. Points are intervals with lo==hi.
struct IntervalStrategy {
  int domain_size = 0;
  std::vector<std::pair<int, int>> intervals;

  /// The 0/1 indicator matrix (|intervals| × domain_size).
  Matrix AsMatrix() const;

  /// Human-readable strategy name, for logs and EXPERIMENTS.md.
  std::string description;
};

/// \brief Identity strategy: one point query per domain cell. Optimal for
/// workloads of disjoint point predicates.
IntervalStrategy MakeIdentityStrategy(int domain_size);

/// \brief Hierarchical (binary interval tree) strategy: the full domain, its
/// halves, quarters, ... down to single cells. Answers any prefix/range query
/// as a combination of O(log m) strategy rows; the classic choice for
/// cumulative workloads.
IntervalStrategy MakeHierarchicalStrategy(int domain_size);

/// \brief Heuristic: does the workload's per-dimension predicate matrix have
/// range structure (rows selecting ≥2 contiguous cells)? If so the
/// hierarchical strategy pays off, otherwise identity.
bool HasRangeStructure(const Matrix& predicate_matrix);

/// \brief Chooses a strategy for a predicate matrix over the given domain:
/// hierarchical when HasRangeStructure, identity otherwise.
IntervalStrategy ChooseStrategy(const Matrix& predicate_matrix, int domain_size);

/// \brief Solves X = P·A⁺ so that P ≈ X·A (exact when rowspace(P) ⊆
/// rowspace(A), which holds for both built-in strategies since they span the
/// full domain).
Result<Matrix> SolveDecomposition(const Matrix& predicate_matrix,
                                  const Matrix& strategy_matrix);

}  // namespace dpstarj::linalg
