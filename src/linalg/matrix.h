// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// A small dense row-major matrix used by the Workload Decomposition mechanism
// (Algorithm 4): predicate matrices, strategy matrices, pseudoinverses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::linalg {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Zero matrix of the given shape (both dimensions may be 0).
  Matrix() = default;
  Matrix(int rows, int cols);

  /// Identity of size n.
  static Matrix Identity(int n);
  /// Builds from nested initializer data (rows must have equal length).
  static Result<Matrix> FromRows(const std::vector<std::vector<double>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Element access (bounds-checked in debug builds).
  double& At(int r, int c);
  double At(int r, int c) const;

  /// One row as a vector.
  std::vector<double> Row(int r) const;
  /// Overwrites one row.
  Status SetRow(int r, const std::vector<double>& values);

  /// Transpose.
  Matrix Transposed() const;

  /// Matrix product; shape mismatch returns InvalidArgument.
  Result<Matrix> Multiply(const Matrix& other) const;

  /// Matrix–vector product; size mismatch returns InvalidArgument.
  Result<std::vector<double>> MultiplyVector(const std::vector<double>& v) const;

  /// Element-wise sum; shape mismatch returns InvalidArgument.
  Result<Matrix> Add(const Matrix& other) const;
  /// Scalar multiple.
  Matrix Scaled(double s) const;

  /// \brief Inverse via Gauss–Jordan with partial pivoting. Requires square;
  /// singular matrices return InvalidArgument.
  Result<Matrix> Inverse() const;

  /// \brief Moore–Penrose pseudoinverse.
  ///
  /// Full-column-rank: (AᵀA)⁻¹Aᵀ; full-row-rank: Aᵀ(AAᵀ)⁻¹. When the Gram
  /// matrix is singular, a small ridge (λI, λ = 1e-10·trace) is applied —
  /// adequate for the well-conditioned 0/1 strategy matrices WD uses.
  Result<Matrix> PseudoInverse() const;

  /// max_ij |a_ij|.
  double MaxAbs() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Maximum column absolute sum (the L1→L1 operator norm); this is the
  /// Laplace sensitivity of answering the rows of a linear query matrix.
  double MaxColumnAbsSum() const;

  /// Debug rendering (small matrices only).
  std::string ToString() const;

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;  // row-major
};

}  // namespace dpstarj::linalg
