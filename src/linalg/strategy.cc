#include "linalg/strategy.h"

#include "common/string_util.h"

namespace dpstarj::linalg {

Matrix IntervalStrategy::AsMatrix() const {
  Matrix m(static_cast<int>(intervals.size()), domain_size);
  for (size_t i = 0; i < intervals.size(); ++i) {
    auto [lo, hi] = intervals[i];
    DPSTARJ_CHECK(0 <= lo && lo <= hi && hi < domain_size,
                  "strategy interval out of domain");
    for (int c = lo; c <= hi; ++c) m.At(static_cast<int>(i), c) = 1.0;
  }
  return m;
}

IntervalStrategy MakeIdentityStrategy(int domain_size) {
  DPSTARJ_CHECK(domain_size > 0, "domain_size must be positive");
  IntervalStrategy s;
  s.domain_size = domain_size;
  s.description = Format("identity(%d)", domain_size);
  s.intervals.reserve(static_cast<size_t>(domain_size));
  for (int i = 0; i < domain_size; ++i) s.intervals.emplace_back(i, i);
  return s;
}

IntervalStrategy MakeHierarchicalStrategy(int domain_size) {
  DPSTARJ_CHECK(domain_size > 0, "domain_size must be positive");
  IntervalStrategy s;
  s.domain_size = domain_size;
  s.description = Format("hierarchical(%d)", domain_size);
  // Breadth-first interval splitting: [0,m-1], halves, ..., unit cells.
  std::vector<std::pair<int, int>> frontier = {{0, domain_size - 1}};
  while (!frontier.empty()) {
    std::vector<std::pair<int, int>> next;
    for (auto [lo, hi] : frontier) {
      s.intervals.emplace_back(lo, hi);
      if (lo < hi) {
        int mid = lo + (hi - lo) / 2;
        next.emplace_back(lo, mid);
        next.emplace_back(mid + 1, hi);
      }
    }
    frontier = std::move(next);
  }
  return s;
}

bool HasRangeStructure(const Matrix& predicate_matrix) {
  for (int r = 0; r < predicate_matrix.rows(); ++r) {
    int run = 0;
    for (int c = 0; c < predicate_matrix.cols(); ++c) {
      if (predicate_matrix.At(r, c) != 0.0) {
        ++run;
        if (run >= 2) return true;
      } else {
        run = 0;
      }
    }
  }
  return false;
}

IntervalStrategy ChooseStrategy(const Matrix& predicate_matrix, int domain_size) {
  if (HasRangeStructure(predicate_matrix)) {
    return MakeHierarchicalStrategy(domain_size);
  }
  return MakeIdentityStrategy(domain_size);
}

Result<Matrix> SolveDecomposition(const Matrix& predicate_matrix,
                                  const Matrix& strategy_matrix) {
  if (predicate_matrix.cols() != strategy_matrix.cols()) {
    return Status::InvalidArgument(
        "predicate and strategy matrices must share the domain dimension");
  }
  DPSTARJ_ASSIGN_OR_RETURN(Matrix pinv, strategy_matrix.PseudoInverse());
  return predicate_matrix.Multiply(pinv);
}

}  // namespace dpstarj::linalg
