#include "obs/access_log.h"

#include <cstring>

#include "common/string_util.h"

namespace dpstarj::obs {

namespace {

// Minimal JSON string escaping (the obs layer can't use net/json.h — net
// depends on obs, not the other way around).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += Format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

AccessLog::~AccessLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<AccessLog>> AccessLog::Open(const std::string& path) {
  std::FILE* file = path == "-" ? stdout : std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::InvalidArgument(
        Format("cannot open access log '%s': %s", path.c_str(),
               std::strerror(errno)));
  }
  auto log = std::make_unique<AccessLog>(Sink());
  if (path != "-") log->file_ = file;
  log->sink_ = [file](const std::string& line) {
    // One fwrite per line: POSIX guarantees stdio stream operations are
    // atomic w.r.t. each other, so lines from other writers can't splice in.
    std::string with_newline = line + "\n";
    std::fwrite(with_newline.data(), 1, with_newline.size(), file);
    std::fflush(file);
  };
  return log;
}

std::string AccessLog::Serialize(const AccessLogEntry& entry) {
  std::string line;
  line.reserve(256);
  line += "{\"ts\":\"" + UtcTimestamp() + "\"";
  line += ",\"method\":\"" + Escape(entry.method) + "\"";
  line += ",\"path\":\"" + Escape(entry.path) + "\"";
  line += ",\"status\":" + std::to_string(entry.status);
  if (!entry.tenant.empty()) {
    line += ",\"tenant\":\"" + Escape(entry.tenant) + "\"";
  }
  line += ",\"total_us\":" + std::to_string(entry.total_us);
  if (entry.trace != nullptr) {
    line += ",\"trace_id\":\"" + Escape(entry.trace->id()) + "\"";
    line += entry.trace->plan_cache_hit ? ",\"plan_cache_hit\":true"
                                        : ",\"plan_cache_hit\":false";
    line += entry.trace->answer_cache_hit ? ",\"answer_cache_hit\":true"
                                          : ",\"answer_cache_hit\":false";
    line += ",\"stages\":{";
    for (int i = 0; i < kStageCount; ++i) {
      const Stage stage = static_cast<Stage>(i);
      if (i > 0) line += ',';
      line += "\"";
      line += StageName(stage);
      line += "\":" + std::to_string(entry.trace->stage_us(stage));
    }
    line += "}";
  }
  line += "}";
  return line;
}

void AccessLog::Write(const AccessLogEntry& entry) {
  if (!sink_) return;
  const std::string line = Serialize(entry);
  std::lock_guard<std::mutex> lock(mu_);
  sink_(line);
}

}  // namespace dpstarj::obs
