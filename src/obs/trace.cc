#include "obs/trace.h"

#include <atomic>
#include <random>

namespace dpstarj::obs {

namespace {

// splitmix64 over a process-unique counter seeded from the OS entropy pool:
// ids are unique within a process run and unpredictable enough across runs to
// be grep-able without colliding in merged logs.
uint64_t NextTraceSeed() {
  static std::atomic<uint64_t> counter = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) | rd();
  }();
  uint64_t z = counter.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::string HexId(uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[static_cast<size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return id;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kHeaderRead: return "header_read";
    case Stage::kBodyRead: return "body_read";
    case Stage::kAdmission: return "admission";
    case Stage::kLedgerSpend: return "ledger_spend";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBind: return "bind";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kPlanCompile: return "plan_compile";
    case Stage::kBitmapRebuild: return "bitmap_rebuild";
    case Stage::kScan: return "scan";
    case Stage::kNoiseDraw: return "noise_draw";
    case Stage::kEncode: return "encode";
    case Stage::kPlanExtend: return "plan_extend";
    case Stage::kIngestApply: return "ingest_apply";
  }
  return "unknown";
}

Trace::Trace()
    : id_(HexId(NextTraceSeed())), start_(std::chrono::steady_clock::now()) {}

uint64_t Trace::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

StageMetrics::StageMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int i = 0; i < kStageCount; ++i) {
    const char* name = StageName(static_cast<Stage>(i));
    histograms_[i] = registry->GetHistogram(
        "dpstarj_stage_duration_seconds",
        "Per-request time spent in each pipeline stage", {{"stage", name}});
    cycles_[i] = registry->GetCounter(
        "dpstarj_stage_cycles_total",
        "CPU cycles burned in each pipeline stage (0 in fallback mode)",
        {{"stage", name}});
    instructions_[i] = registry->GetCounter(
        "dpstarj_stage_instructions_total",
        "Instructions retired in each pipeline stage (0 in fallback mode)",
        {{"stage", name}});
    llc_misses_[i] = registry->GetCounter(
        "dpstarj_stage_llc_misses_total",
        "Last-level cache misses in each pipeline stage (0 in fallback mode)",
        {{"stage", name}});
    branch_misses_[i] = registry->GetCounter(
        "dpstarj_stage_branch_misses_total",
        "Branch mispredictions in each pipeline stage (0 in fallback mode)",
        {{"stage", name}});
    task_clock_ns_[i] = registry->GetCounter(
        "dpstarj_stage_task_clock_ns_total",
        "Thread CPU time (ns) in each pipeline stage; valid in both profiler "
        "modes",
        {{"stage", name}});
  }
  // One child per mode; the active one reads 1. Resolving the mode here (at
  // service construction) also performs the first perf_event_open attempt on
  // a known-good thread rather than mid-request.
  const prof::CounterMode active = prof::ActiveCounterMode();
  for (prof::CounterMode mode :
       {prof::CounterMode::kPerfEvents, prof::CounterMode::kFallback}) {
    registry
        ->GetGauge("dpstarj_profiler_mode",
                   "Counter sourcing mode: the active child reads 1",
                   {{"mode", prof::CounterModeName(mode)}})
        ->Set(mode == active ? 1.0 : 0.0);
  }
}

void StageMetrics::ObserveTrace(const Trace& trace) {
  for (int i = 0; i < kStageCount; ++i) {
    if (histograms_[i] == nullptr) continue;
    const Stage stage = static_cast<Stage>(i);
    if (!trace.touched(stage)) continue;
    histograms_[i]->Observe(static_cast<double>(trace.stage_ns(stage)) * 1e-9);
    const prof::CounterSet& prof = trace.stage_prof(stage);
    cycles_[i]->Inc(prof.cycles);
    instructions_[i]->Inc(prof.instructions);
    llc_misses_[i]->Inc(prof.llc_misses);
    branch_misses_[i]->Inc(prof.branch_misses);
    task_clock_ns_[i]->Inc(prof.task_clock_ns);
  }
}

}  // namespace dpstarj::obs
