// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// MetricsRegistry — the dependency-free telemetry substrate of the service:
// named counters, gauges and fixed-bucket histograms with Prometheus text
// exposition. Designed so the hot path pays a few relaxed atomics:
//
//   * registration (GetCounter/GetGauge/GetHistogram) takes the registry
//     mutex once and returns a stable raw pointer — callers resolve their
//     handles at construction and never touch the registry again;
//   * Counter::Inc is one relaxed fetch_add; Histogram::Observe is one
//     upper_bound over ~20 doubles plus two relaxed atomic adds and one CAS
//     loop for the sum (per-bucket atomics, no lock, no false-sharing-free
//     striping needed at service request rates);
//   * RenderPrometheus/Snapshot read the atomics without stopping writers —
//     a scrape is a consistent-enough view (counts may trail sums by the
//     observations in flight), never a torn value.
//
// Quantiles are extracted from bucket counts the way Prometheus'
// histogram_quantile() does: find the bucket holding the target rank,
// linearly interpolate inside it. Accuracy is bounded by bucket width; the
// default latency buckets span 5 µs – 10 s at ~2.2x steps.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dpstarj::obs {

/// Label set of one metric child, e.g. {{"stage", "scan"}}. Sorted by key at
/// registration so label order never creates duplicate children.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief A monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A settable instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief A point-in-time copy of a histogram's buckets, with quantile
/// extraction. `counts[i]` is the number of observations in
/// (upper_bounds[i-1], upper_bounds[i]]; the final entry is the +Inf bucket.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;  ///< finite bucket bounds, ascending
  std::vector<uint64_t> counts;      ///< per-bucket (NOT cumulative); size = bounds+1
  uint64_t count = 0;                ///< total observations
  double sum = 0.0;                  ///< sum of observed values

  /// \brief The q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket holding rank q·count, Prometheus-style: ranks in the +Inf bucket
  /// clamp to the largest finite bound, an empty histogram returns 0.
  double Quantile(double q) const;

  /// sum / count (0 when empty).
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// \brief A fixed-bucket histogram with atomic-per-bucket counts.
class Histogram {
 public:
  /// `upper_bounds` must be ascending; a value v lands in the first bucket
  /// with v <= bound (the +Inf bucket when above all of them).
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                int count);
  /// Default latency buckets in seconds: 5 µs … 10 s, ~2.2x steps (20 bounds).
  static const std::vector<double>& DefaultLatencyBuckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief A thread-safe named-metric registry with Prometheus text rendering.
///
/// A metric family (one name) holds children keyed by label set; the family's
/// type and help string are fixed by the first registration (a later Get with
/// a conflicting type aborts — that is a programming error, not input).
/// Returned pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(
      const std::string& name, const std::string& help, Labels labels = {},
      std::vector<double> buckets = Histogram::DefaultLatencyBuckets());

  /// Lookup without creating; nullptr when the child does not exist (or the
  /// family has a different type).
  const Counter* FindCounter(const std::string& name, const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name, const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

  /// \brief Every child of family `name` with its labels — scrape-side
  /// iteration for JSON renderings like GET /v1/trace/stats.
  std::vector<std::pair<Labels, const Histogram*>> HistogramChildren(
      const std::string& name) const;

  /// \brief The full registry in Prometheus text exposition format 0.0.4
  /// (# HELP / # TYPE lines, histogram _bucket/_sum/_count expansion,
  /// families and children in sorted order).
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Type type = Type::kCounter;
    /// Keyed by the serialized label set (deterministic: labels are sorted).
    std::map<std::string, Child> children;
  };

  /// Returns the child for (name, labels), creating family/child as needed.
  /// Aborts on a type conflict. Requires mu_ held.
  Child* GetChildLocked(const std::string& name, const std::string& help,
                        Type type, Labels* labels);
  const Child* FindChildLocked(const std::string& name, const Labels& labels,
                               Type type) const;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace dpstarj::obs
