// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Per-thread hardware performance counters for the stage profiler, with a
// software fallback that never reports a silent zero.
//
// Preferred mode opens one perf_event group per thread (cycles leader +
// instructions, LLC misses, branch misses as siblings) the first time the
// thread samples, and reads all four with a single group read. The group is
// opened with PERF_FORMAT_TIME_ENABLED|TIME_RUNNING so counts are scaled for
// kernel multiplexing, and with exclude_kernel so perf_event_paranoid=2 hosts
// (the unprivileged-container default) still admit it.
//
// When the syscall is denied (paranoid level, seccomp) or the host simply has
// no PMU (most cloud VMs return ENOENT for hardware events), the subsystem
// degrades to CLOCK_THREAD_CPUTIME_ID: the four hardware series read zero and
// the task-clock series keeps working. The active mode is process-wide —
// resolved once, on the first sample — and exported as the
// dpstarj_profiler_mode gauge (obs/trace.cc), so a scrape can always tell
// "no cycles burned" apart from "no PMU access".
//
// The task-clock series is sourced from CLOCK_THREAD_CPUTIME_ID in BOTH
// modes: it is the one series dashboards may rely on unconditionally.
//
// Env knobs:
//   DPSTARJ_PROF_NO_PERF=1   force the fallback mode (used by tests, and by
//                            operators who want the syscall never attempted).

#pragma once

#include <cstdint>

namespace dpstarj::obs::prof {

/// How the per-thread counters are being sourced (process-wide).
enum class CounterMode : int {
  kFallback = 0,    ///< CLOCK_THREAD_CPUTIME_ID only; hardware series are 0
  kPerfEvents = 1,  ///< perf_event_open group per thread
};

/// Stable label value for the dpstarj_profiler_mode gauge
/// ("thread_cputime" / "perf_events").
const char* CounterModeName(CounterMode mode);

/// \brief One reading (or delta) of a thread's counters.
struct CounterSet {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;

  /// Per-field saturating difference (multiplexing scaling can make a scaled
  /// hardware count regress by a few counts between reads; clamp to 0 rather
  /// than wrap).
  CounterSet operator-(const CounterSet& earlier) const;
  void Accumulate(const CounterSet& delta);
};

/// \brief The process-wide counter mode, resolving it (including the first
/// perf_event_open attempt, on the calling thread) when still undecided.
CounterMode ActiveCounterMode();

/// \brief Reads the calling thread's counters. Cheap enough for stage spans:
/// one clock_gettime plus, in perf mode, one group read(). The first call on
/// a thread opens its group (perf mode only).
CounterSet SampleThreadCounters();

/// \brief Process-wide counters for bench harnesses: cycles + instructions
/// opened with inherit=1 BEFORE worker threads spawn, so a later Read() sums
/// over every thread the process has created since. Reads scale for
/// multiplexing. available() is false when the host denies the events — the
/// bench then records zero columns (and says so in its host block).
class ProcessCounters {
 public:
  ProcessCounters();
  ~ProcessCounters();
  ProcessCounters(const ProcessCounters&) = delete;
  ProcessCounters& operator=(const ProcessCounters&) = delete;

  struct Reading {
    uint64_t cycles = 0;
    uint64_t instructions = 0;
  };

  bool available() const { return cycles_fd_ >= 0 && instructions_fd_ >= 0; }
  Reading Read() const;

 private:
  int cycles_fd_ = -1;
  int instructions_fd_ = -1;
};

}  // namespace dpstarj::obs::prof
