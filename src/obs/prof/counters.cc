#include "obs/prof/counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <ctime>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace dpstarj::obs::prof {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

uint64_t ThreadCpuNs() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

// Process-wide mode: -1 undecided, otherwise a CounterMode value. Decided by
// whichever thread first opens (or fails to open) a group; later threads
// follow the decision without re-probing, so a flaky host cannot split the
// process across modes.
std::atomic<int> g_mode{-1};

bool PerfForcedOff() {
  const char* env = std::getenv("DPSTARJ_PROF_NO_PERF");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

#if defined(__linux__)

int PerfOpen(uint32_t type, uint64_t config, int group_fd, uint64_t format,
             bool disabled, bool inherit) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.read_format = format;
  attr.disabled = disabled ? 1 : 0;
  attr.inherit = inherit ? 1 : 0;
  // User-space measurement only: perf_event_paranoid=2 (the unprivileged
  // default) refuses kernel-inclusive counters but admits these.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0ul));
}

// One thread's counter group: cycles leads, the other three follow. Sibling
// failures (a PMU without an LLC event, say) skip that series rather than
// losing the group; slot_of_[i] maps the CounterSet field to its position in
// the group read, -1 when unavailable.
struct ThreadGroup {
  bool attempted = false;
  int fds[4] = {-1, -1, -1, -1};
  int slot_of[4] = {-1, -1, -1, -1};
  int num_open = 0;

  ~ThreadGroup() {
    for (int fd : fds) {
      if (fd >= 0) close(fd);
    }
  }

  bool Open() {
    attempted = true;
    static constexpr struct {
      uint32_t type;
      uint64_t config;
    } kEvents[4] = {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    };
    const uint64_t format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                            PERF_FORMAT_TOTAL_TIME_RUNNING;
    fds[0] = PerfOpen(kEvents[0].type, kEvents[0].config, /*group_fd=*/-1,
                      format, /*disabled=*/true, /*inherit=*/false);
    if (fds[0] < 0) return false;
    slot_of[0] = 0;
    num_open = 1;
    for (int i = 1; i < 4; ++i) {
      fds[i] = PerfOpen(kEvents[i].type, kEvents[i].config, fds[0], format,
                        /*disabled=*/false, /*inherit=*/false);
      if (fds[i] >= 0) slot_of[i] = num_open++;
    }
    if (ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
      for (int& fd : fds) {
        if (fd >= 0) close(fd);
        fd = -1;
      }
      num_open = 0;
      return false;
    }
    return true;
  }

  // Reads the group; false on a failed read (counters stay zero).
  bool Read(uint64_t out[4]) const {
    // Layout: nr, time_enabled, time_running, value[nr].
    uint64_t buf[3 + 4] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + static_cast<size_t>(num_open)) * sizeof(uint64_t));
    if (read(fds[0], buf, static_cast<size_t>(want)) != want) return false;
    const uint64_t enabled = buf[1], running = buf[2];
    for (int i = 0; i < 4; ++i) {
      if (slot_of[i] < 0) continue;
      uint64_t v = buf[3 + slot_of[i]];
      // Multiplexing scaling: the kernel time-slices over-subscribed PMUs;
      // scale the observed count up by enabled/running (Brendan Gregg's
      // "perf stat" convention). running == 0 means never scheduled.
      if (running > 0 && running < enabled) {
        v = static_cast<uint64_t>(
            static_cast<double>(v) *
            (static_cast<double>(enabled) / static_cast<double>(running)));
      } else if (running == 0) {
        v = 0;
      }
      out[i] = v;
    }
    return true;
  }
};

thread_local ThreadGroup t_group;

#endif  // __linux__

}  // namespace

const char* CounterModeName(CounterMode mode) {
  switch (mode) {
    case CounterMode::kPerfEvents: return "perf_events";
    case CounterMode::kFallback: return "thread_cputime";
  }
  return "unknown";
}

CounterSet CounterSet::operator-(const CounterSet& earlier) const {
  CounterSet d;
  d.cycles = SatSub(cycles, earlier.cycles);
  d.instructions = SatSub(instructions, earlier.instructions);
  d.llc_misses = SatSub(llc_misses, earlier.llc_misses);
  d.branch_misses = SatSub(branch_misses, earlier.branch_misses);
  d.task_clock_ns = SatSub(task_clock_ns, earlier.task_clock_ns);
  return d;
}

void CounterSet::Accumulate(const CounterSet& delta) {
  cycles += delta.cycles;
  instructions += delta.instructions;
  llc_misses += delta.llc_misses;
  branch_misses += delta.branch_misses;
  task_clock_ns += delta.task_clock_ns;
}

CounterSet SampleThreadCounters() {
  CounterSet out;
  out.task_clock_ns = ThreadCpuNs();
#if defined(__linux__)
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode == static_cast<int>(CounterMode::kFallback)) return out;
  if (!t_group.attempted) {
    bool opened = false;
    if (mode != static_cast<int>(CounterMode::kFallback) && !PerfForcedOff()) {
      opened = t_group.Open();
    } else {
      t_group.attempted = true;
    }
    if (mode < 0) {
      // First thread to sample decides the process mode.
      int expected = -1;
      g_mode.compare_exchange_strong(
          expected,
          static_cast<int>(opened ? CounterMode::kPerfEvents
                                  : CounterMode::kFallback),
          std::memory_order_acq_rel);
    }
  }
  if (t_group.num_open > 0) {
    uint64_t hw[4] = {};
    if (t_group.Read(hw)) {
      out.cycles = hw[0];
      out.instructions = hw[1];
      out.llc_misses = hw[2];
      out.branch_misses = hw[3];
    }
  }
#endif
  return out;
}

CounterMode ActiveCounterMode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode < 0) {
    (void)SampleThreadCounters();  // resolves g_mode as a side effect
    mode = g_mode.load(std::memory_order_acquire);
  }
  if (mode < 0) return CounterMode::kFallback;  // non-Linux: never resolves
  return static_cast<CounterMode>(mode);
}

ProcessCounters::ProcessCounters() {
#if defined(__linux__)
  if (PerfForcedOff()) return;
  // inherit=1 is incompatible with PERF_FORMAT_GROUP, so the two events are
  // independent fds, each scaled by its own enabled/running times.
  const uint64_t format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  cycles_fd_ = PerfOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
                        /*group_fd=*/-1, format, /*disabled=*/false,
                        /*inherit=*/true);
  instructions_fd_ = PerfOpen(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                              /*group_fd=*/-1, format, /*disabled=*/false,
                              /*inherit=*/true);
  if (!available()) {
    if (cycles_fd_ >= 0) close(cycles_fd_);
    if (instructions_fd_ >= 0) close(instructions_fd_);
    cycles_fd_ = instructions_fd_ = -1;
  }
#endif
}

ProcessCounters::~ProcessCounters() {
#if defined(__linux__)
  if (cycles_fd_ >= 0) close(cycles_fd_);
  if (instructions_fd_ >= 0) close(instructions_fd_);
#endif
}

ProcessCounters::Reading ProcessCounters::Read() const {
  Reading r;
#if defined(__linux__)
  if (!available()) return r;
  auto read_scaled = [](int fd) -> uint64_t {
    uint64_t buf[3] = {};  // value, time_enabled, time_running
    if (read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
      return 0;
    }
    uint64_t v = buf[0];
    if (buf[2] > 0 && buf[2] < buf[1]) {
      v = static_cast<uint64_t>(
          static_cast<double>(v) *
          (static_cast<double>(buf[1]) / static_cast<double>(buf[2])));
    } else if (buf[2] == 0) {
      v = 0;
    }
    return v;
  };
  r.cycles = read_scaled(cycles_fd_);
  r.instructions = read_scaled(instructions_fd_);
#endif
  return r;
}

}  // namespace dpstarj::obs::prof
