#include "obs/prof/sampler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

namespace dpstarj::obs::prof {

#if defined(__linux__)

namespace {

constexpr int kMaxFrames = 48;
constexpr size_t kMaxSlots = 32768;
constexpr uintptr_t kMaxFrameStride = uintptr_t{8} << 20;  // 8 MiB stack cap

struct Slot {
  std::atomic<uint32_t> ready{0};
  uint32_t depth = 0;
  char thread_name[16] = {};
  uintptr_t frames[kMaxFrames] = {};
};

// Capture state shared with the signal handler. The slot array only grows
// (never freed, never shrunk) and is only (re)pointed while no capture is
// active and no handler is in flight, so a straggler signal can at worst
// observe g_active == false and return.
Slot* g_slots = nullptr;
size_t g_slot_count = 0;
std::atomic<size_t> g_next{0};
std::atomic<size_t> g_capacity{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<bool> g_active{false};
std::atomic<int> g_in_handler{0};
std::atomic<bool> g_running{false};
size_t g_page_size = 4096;
std::once_flag g_install_once;

// True when [addr, addr+len) lies in mapped pages. mincore() is a plain
// syscall (async-signal-safe in practice) and returns ENOMEM for unmapped
// ranges — the probe that lets the walker chase a garbage frame pointer
// without faulting.
bool AddrMapped(uintptr_t addr, size_t len) {
  const uintptr_t page = addr & ~(static_cast<uintptr_t>(g_page_size) - 1);
  const size_t span = (addr + len) - page;
  unsigned char vec[4];
  if (span > sizeof(vec) * g_page_size) return false;
  return mincore(reinterpret_cast<void*>(page), span, vec) == 0;
}

void SigprofHandler(int, siginfo_t*, void* ucontext) {
  const int saved_errno = errno;  // handlers must not spoil errno
  g_in_handler.fetch_add(1, std::memory_order_acq_rel);
  if (g_active.load(std::memory_order_acquire)) {
    const size_t idx = g_next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= g_capacity.load(std::memory_order_relaxed)) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      Slot& slot = g_slots[idx];
      (void)prctl(PR_GET_NAME, reinterpret_cast<unsigned long>(slot.thread_name),
                  0, 0, 0);
      slot.thread_name[sizeof(slot.thread_name) - 1] = '\0';
      const auto* uc = static_cast<const ucontext_t*>(ucontext);
      uintptr_t pc = 0, fp = 0;
#if defined(__x86_64__)
      pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
      fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
      pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
      fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#endif
      uint32_t n = 0;
      if (pc != 0) slot.frames[n++] = pc;
      // Frame-pointer chain: each record is {caller's fp, return address}
      // on both x86-64 (rbp) and AArch64 (x29). Monotonically increasing
      // fp with a sane stride is required, so a corrupt chain terminates
      // instead of looping.
      while (n < kMaxFrames) {
        if (fp == 0 || (fp % sizeof(uintptr_t)) != 0) break;
        if (!AddrMapped(fp, 2 * sizeof(uintptr_t))) break;
        const uintptr_t next_fp = *reinterpret_cast<const uintptr_t*>(fp);
        const uintptr_t ret =
            *(reinterpret_cast<const uintptr_t*>(fp) + 1);
        if (ret < 0x1000) break;
        slot.frames[n++] = ret;
        if (next_fp <= fp || next_fp - fp > kMaxFrameStride) break;
        fp = next_fp;
      }
      slot.depth = n;
      slot.ready.store(1, std::memory_order_release);
    }
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

void InstallHandler() {
  g_page_size = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  if (g_page_size == 0 || (g_page_size & (g_page_size - 1)) != 0) {
    g_page_size = 4096;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = SigprofHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  (void)sigaction(SIGPROF, &sa, nullptr);
  // Never restored: the handler is one atomic load when inactive, and a
  // SIGPROF in flight at window close against SIG_DFL would kill the process.
}

// Waits (bounded) until no thread is inside the handler; after this, no
// handler can touch the slots of the window that just closed because
// g_active is already false.
void DrainHandlers() {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (g_in_handler.load(std::memory_order_acquire) != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

// Symbol for one address, memoized. Return addresses point one byte past the
// call, so callers pass addr-1 to land inside the calling function. dladdr
// covers shared objects always and the main binary when linked -rdynamic;
// everything else renders as a raw hex frame.
const std::string& SymbolFor(uintptr_t addr,
                             std::map<uintptr_t, std::string>* cache) {
  auto it = cache->find(addr);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(addr), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // ';' is the folded-stack frame separator; a frame containing one would
    // corrupt the flamegraph. (Demangled names never contain newlines.)
    std::replace(name.begin(), name.end(), ';', ':');
  } else {
    char buf[2 + sizeof(uintptr_t) * 2 + 1];
    std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(addr));
    name = buf;
  }
  return cache->emplace(addr, std::move(name)).first->second;
}

}  // namespace

Sampler& Sampler::Global() {
  static Sampler* sampler = new Sampler();  // leaked: outlives static dtors
  return *sampler;
}

bool Sampler::running() const {
  return g_running.load(std::memory_order_acquire);
}

Result<Sampler::Profile> Sampler::Run(double seconds, int hz) {
  if (!std::isfinite(seconds) || seconds <= 0.0 || seconds > 30.0) {
    return Status::InvalidArgument("seconds must be in (0, 30]");
  }
  if (hz < 1 || hz > 1000) {
    return Status::InvalidArgument("hz must be in [1, 1000]");
  }
  bool expected = false;
  if (!g_running.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return Status::AlreadyExists(
        "a profile capture is already running; retry after it completes");
  }
  struct RunningGuard {
    ~RunningGuard() { g_running.store(false, std::memory_order_release); }
  } running_guard;

  std::call_once(g_install_once, InstallHandler);

  // Size the buffer to the request: hz counts CPU-seconds, so a heavily
  // threaded process can deliver many times hz*seconds samples in the wall
  // window; x16 headroom covers 16 busy cores before drops start.
  const size_t want = static_cast<size_t>(
      std::min<double>(static_cast<double>(kMaxSlots),
                       seconds * static_cast<double>(hz) * 16.0 + 256.0));
  DrainHandlers();  // stragglers from a previous window, before re-pointing
  if (g_slot_count < want) {
    Slot* grown = new Slot[want];
    delete[] g_slots;  // no handler can hold this: g_active is false, drained
    g_slots = grown;
    g_slot_count = want;
  }
  for (size_t i = 0; i < want; ++i) {
    g_slots[i].ready.store(0, std::memory_order_relaxed);
    g_slots[i].depth = 0;
  }
  g_next.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_capacity.store(want, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);

  itimerval timer;
  const long interval_us = std::max(1000000L / hz, 1L);
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(false, std::memory_order_release);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));

  itimerval off = {};
  (void)setitimer(ITIMER_PROF, &off, nullptr);
  g_active.store(false, std::memory_order_release);
  DrainHandlers();

  // Aggregate: fold identical stacks, then symbolize each distinct address
  // once. Stacks are captured innermost-first; folded output is root-first
  // with the thread name as the root frame.
  Profile profile;
  profile.dropped = g_dropped.load(std::memory_order_relaxed);
  const size_t claimed =
      std::min(g_next.load(std::memory_order_relaxed), want);
  std::map<uintptr_t, std::string> symbols;
  std::map<std::string, uint64_t> folded;
  for (size_t i = 0; i < claimed; ++i) {
    const Slot& slot = g_slots[i];
    if (slot.ready.load(std::memory_order_acquire) == 0) continue;
    ++profile.samples;
    std::string stack(slot.thread_name[0] != '\0' ? slot.thread_name : "?");
    for (uint32_t f = slot.depth; f-- > 0;) {
      // Return addresses (every frame but the innermost) resolve at addr-1,
      // inside the call instruction.
      const uintptr_t addr = f == 0 ? slot.frames[f] : slot.frames[f] - 1;
      stack += ';';
      stack += SymbolFor(addr, &symbols);
    }
    ++folded[stack];
  }
  std::vector<std::pair<std::string, uint64_t>> lines(folded.begin(),
                                                      folded.end());
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  for (const auto& [stack, count] : lines) {
    profile.folded += stack;
    profile.folded += ' ';
    profile.folded += std::to_string(count);
    profile.folded += '\n';
  }
  return profile;
}

#else  // !__linux__

Sampler& Sampler::Global() {
  static Sampler* sampler = new Sampler();
  return *sampler;
}

bool Sampler::running() const { return false; }

Result<Sampler::Profile> Sampler::Run(double, int) {
  return Status::NotSupported("sampling profiler requires Linux");
}

#endif

}  // namespace dpstarj::obs::prof
