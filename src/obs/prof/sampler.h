// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// On-demand timer-signal sampling profiler: folded-stack (flamegraph-
// collapsed) captures of wherever the process burns CPU, served by
// GET /v1/profile with zero cost while no capture is running.
//
// Mechanism: Run() arms setitimer(ITIMER_PROF), which raises SIGPROF every
// 1/hz seconds of *process CPU time*. The kernel delivers each signal on a
// currently-running thread — exactly the thread worth sampling — so EnginePool
// workers, MorselPool scan threads and HTTP handlers all appear in proportion
// to the CPU they burn, and an idle process generates no signals at all. The
// async-signal-safe handler claims a preallocated slot (one fetch_add),
// records the interrupted PC, walks the frame-pointer chain (the whole tree
// builds with -fno-omit-frame-pointer; each candidate frame is validated with
// mincore() before dereferencing), stamps the thread name, and publishes the
// slot with a release store. Aggregation, symbolization (dladdr +
// __cxa_demangle — link the binary with -rdynamic for named frames) and
// folding happen on the calling thread after the capture window closes.
//
// One capture at a time: a second Run() while one is live returns
// AlreadyExists, which the wire layer maps to HTTP 409. The SIGPROF handler
// is installed once and never restored (it is inert — one atomic load — when
// no capture is live): restoring SIG_DFL would let a signal already in flight
// terminate the process, and ITIMER_PROF is only ever armed inside Run().
//
// Bounds: seconds in (0, 30], hz in [1, 1000]; the sample buffer is sized to
// the request (capped) and kept alive across runs, so a straggler handler
// from a just-closed window can never touch freed memory.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace dpstarj::obs::prof {

/// \brief The process-wide sampling profiler. All methods thread-safe.
class Sampler {
 public:
  /// One finished capture.
  struct Profile {
    /// Flamegraph-collapsed text: "thread;outer;...;inner COUNT\n" per
    /// distinct stack, sorted by count descending.
    std::string folded;
    uint64_t samples = 0;  ///< stacks captured
    uint64_t dropped = 0;  ///< signals that found the buffer full
  };

  static Sampler& Global();

  /// \brief Captures for `seconds` of wall time at `hz` samples per CPU-
  /// second, blocking the calling thread for the window. Errors:
  /// InvalidArgument on out-of-bounds parameters, AlreadyExists when a
  /// capture is already live (HTTP 409), Internal when the signal machinery
  /// is unavailable.
  Result<Profile> Run(double seconds, int hz);

  /// True while a capture window is open (for tests and status pages).
  bool running() const;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

 private:
  Sampler() = default;
};

}  // namespace dpstarj::obs::prof
