#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace dpstarj::obs {

namespace {

// Serializes a sorted label set into the registry's child key and, identically,
// into the Prometheus child suffix: {k1="v1",k2="v2"} with backslash, quote and
// newline escaped per the exposition format.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string LabelKey(const Labels& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

void SortLabels(Labels* labels) {
  std::sort(labels->begin(), labels->end());
}

// Prometheus renders bucket bounds and values with the shortest round-trip
// representation; %.17g round-trips doubles but prints 0.005 as
// 0.0050000000000000001, so use %g with enough digits and trim.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || upper_bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target && counts[i] > 0) {
      if (i >= upper_bounds.size()) {
        // Rank falls in the +Inf bucket: clamp to the largest finite bound,
        // exactly as Prometheus' histogram_quantile does.
        return upper_bounds.back();
      }
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      const uint64_t below = cumulative - counts[i];
      const double frac =
          (target - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return upper_bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v,
                                   // v lands in the first bucket with v <= bound
                                   [](double value, double bound) { return value <= bound; });
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  // Buckets first, then the totals: a concurrent Observe bumps the bucket
  // before the total, so count >= sum-of-buckets can briefly fail but no
  // bucket can exceed what the totals account for in a later scrape.
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.counts[i];
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBuckets() {
  // 5 µs … ~24 s over 20 bounds; covers a cache hit (~10 µs) through a cold
  // large-scale-factor scan without resolution cliffs in between.
  static const std::vector<double> kBuckets =
      ExponentialBuckets(5e-6, 2.2, 20);
  return kBuckets;
}

MetricsRegistry::Child* MetricsRegistry::GetChildLocked(const std::string& name,
                                                        const std::string& help,
                                                        Type type,
                                                        Labels* labels) {
  SortLabels(labels);
  auto [fit, inserted] = families_.try_emplace(name);
  Family& family = fit->second;
  if (inserted) {
    family.help = help;
    family.type = type;
  } else if (family.type != type) {
    std::fprintf(stderr,
                 "dpstarj fatal: metric '%s' registered with two types\n",
                 name.c_str());
    std::abort();
  }
  return &family.children[LabelKey(*labels)];
}

const MetricsRegistry::Child* MetricsRegistry::FindChildLocked(
    const std::string& name, const Labels& labels, Type type) const {
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.type != type) return nullptr;
  Labels sorted = labels;
  SortLabels(&sorted);
  const auto cit = fit->second.children.find(LabelKey(sorted));
  return cit == fit->second.children.end() ? nullptr : &cit->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = GetChildLocked(name, help, Type::kCounter, &labels);
  if (child->counter == nullptr) {
    child->labels = std::move(labels);
    child->counter = std::make_unique<Counter>();
  }
  return child->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = GetChildLocked(name, help, Type::kGauge, &labels);
  if (child->gauge == nullptr) {
    child->labels = std::move(labels);
    child->gauge = std::make_unique<Gauge>();
  }
  return child->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help, Labels labels,
                                         std::vector<double> buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  Child* child = GetChildLocked(name, help, Type::kHistogram, &labels);
  if (child->histogram == nullptr) {
    child->labels = std::move(labels);
    child->histogram = std::make_unique<Histogram>(std::move(buckets));
  }
  return child->histogram.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Child* child = FindChildLocked(name, labels, Type::kCounter);
  return child == nullptr ? nullptr : child->counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Child* child = FindChildLocked(name, labels, Type::kGauge);
  return child == nullptr ? nullptr : child->gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Child* child = FindChildLocked(name, labels, Type::kHistogram);
  return child == nullptr ? nullptr : child->histogram.get();
}

std::vector<std::pair<Labels, const Histogram*>> MetricsRegistry::HistogramChildren(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<Labels, const Histogram*>> out;
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.type != Type::kHistogram) return out;
  for (const auto& [key, child] : fit->second.children) {
    if (child.histogram != nullptr) out.emplace_back(child.labels, child.histogram.get());
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter: out += "counter\n"; break;
      case Type::kGauge: out += "gauge\n"; break;
      case Type::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [key, child] : family.children) {
      if (child.counter != nullptr) {
        out += name + key + " " + std::to_string(child.counter->Value()) + "\n";
      } else if (child.gauge != nullptr) {
        out += name + key + " " + FormatDouble(child.gauge->Value()) + "\n";
      } else if (child.histogram != nullptr) {
        const HistogramSnapshot snap = child.histogram->Snapshot();
        // _bucket series are cumulative and the le label joins any existing
        // labels of the child (child keys never carry an `le`).
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          const std::string le =
              i < snap.upper_bounds.size() ? FormatDouble(snap.upper_bounds[i])
                                           : "+Inf";
          std::string series = name + "_bucket";
          if (key.empty()) {
            series += "{le=\"" + le + "\"}";
          } else {
            series += key.substr(0, key.size() - 1) + ",le=\"" + le + "\"}";
          }
          out += series + " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_sum" + key + " " + FormatDouble(snap.sum) + "\n";
        out += name + "_count" + key + " " + std::to_string(snap.count) + "\n";
      }
    }
  }
  return out;
}

}  // namespace dpstarj::obs
