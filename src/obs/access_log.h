// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// JSON-lines access log. One line per finished HTTP exchange — including the
// ones that never reached a handler (408 deadline reaps, 503 sheds) — with
// the request's per-stage microseconds when a Trace rode along. The sink is
// injectable so tests capture lines in memory; the file sink serializes each
// line under a mutex and writes it with a single fwrite, so concurrent
// handler threads can't interleave partial lines (same discipline the Logger
// follows).
//
// Line shape (stable keys, one JSON object per line):
//   {"ts":"2026-08-08T12:00:00.123456Z","method":"POST","path":"/v1/query",
//    "status":200,"tenant":"acme","trace_id":"9f2c...","total_us":1234,
//    "plan_cache_hit":true,"answer_cache_hit":false,
//    "stages":{"header_read":12,"body_read":3,...}}
// `tenant`, `trace_id`, the cache flags and `stages` are omitted when the
// exchange had no trace (e.g. a reaped idle connection).

#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "obs/trace.h"

namespace dpstarj::obs {

/// \brief One finished exchange, ready to serialize.
struct AccessLogEntry {
  std::string method;
  std::string path;
  int status = 0;
  std::string tenant;        ///< empty → key omitted
  uint64_t total_us = 0;     ///< request wall time
  const Trace* trace = nullptr;  ///< optional stage breakdown
};

/// \brief Thread-safe JSON-lines sink.
class AccessLog {
 public:
  using Sink = std::function<void(const std::string& line)>;

  /// A log that hands each serialized line (no trailing newline) to `sink`.
  explicit AccessLog(Sink sink) : sink_(std::move(sink)) {}
  ~AccessLog();

  /// Opens (appends to) `path`; "-" means stdout.
  static Result<std::unique_ptr<AccessLog>> Open(const std::string& path);

  /// Serializes and emits one line.
  void Write(const AccessLogEntry& entry);

  /// Serialization without a sink — what Write emits; exposed for tests.
  static std::string Serialize(const AccessLogEntry& entry);

 private:
  Sink sink_;
  std::FILE* file_ = nullptr;  ///< owned when opened via Open (not stdout)
  std::mutex mu_;              ///< orders sink calls across handler threads
};

}  // namespace dpstarj::obs
