// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Per-request stage tracing. A Trace rides a single request through
// HttpServer → ServiceApi → QueryService → EnginePool → PredicateMechanism →
// StarJoinExecutor, accumulating one monotonic-clock duration per Stage. It
// is deliberately NOT internally synchronized: a request's trace has exactly
// one writer at a time (the handler thread before dispatch, the pool worker
// during execution, the handler again after future.get()), and the
// promise/future handoff between them publishes the worker's writes. Code
// that wants concurrent aggregate views uses StageMetrics, which folds
// finished traces into registry histograms.
//
// All trace parameters threaded through the engine layers default to nullptr,
// so call sites that don't trace pay a predictable-branch nullptr check and
// nothing else.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/prof/counters.h"

namespace dpstarj::obs {

/// The instrumented stages of a request, in pipeline order.
enum class Stage : int {
  kHeaderRead = 0,  ///< socket read until headers complete
  kBodyRead,        ///< socket read of the body
  kAdmission,       ///< per-tenant fair-admission check
  kLedgerSpend,     ///< budget ledger spend (and refunds)
  kQueueWait,       ///< enqueue → worker pickup
  kBind,            ///< SQL parse + bind
  kCacheLookup,     ///< answer-cache probe
  kPlanCompile,     ///< plan-cache miss: scaffold compile
  kBitmapRebuild,   ///< per-dimension predicate bitmap build
  kScan,            ///< fact sweep / aggregation
  kNoiseDraw,       ///< predicate perturbation sampling
  kEncode,          ///< result → JSON response body
  kPlanExtend,      ///< plan-cache append hit: incremental scaffold extend
  kIngestApply,     ///< ingest: row append + epoch bump under the write lock
};

inline constexpr int kStageCount = static_cast<int>(Stage::kIngestApply) + 1;

/// Stable lower_snake_case stage name ("header_read", "scan", ...), used as
/// the `stage` label value and the access-log key.
const char* StageName(Stage stage);

/// \brief One request's accumulated stage spans plus route/outcome flags.
class Trace {
 public:
  /// A fresh trace with a unique 16-hex-char id and start time = now.
  Trace();

  const std::string& id() const { return id_; }

  /// Adds `ns` to the stage's span (stages touched more than once — e.g. a
  /// ledger spend followed by a refund — accumulate).
  void Record(Stage stage, uint64_t ns) {
    stage_ns_[static_cast<int>(stage)] += ns;
    touched_ |= 1u << static_cast<int>(stage);
  }

  uint64_t stage_ns(Stage stage) const {
    return stage_ns_[static_cast<int>(stage)];
  }
  uint64_t stage_us(Stage stage) const { return stage_ns(stage) / 1000; }
  bool touched(Stage stage) const {
    return (touched_ & (1u << static_cast<int>(stage))) != 0;
  }

  /// Accumulates a hardware-counter delta for the stage. Deltas are taken by
  /// ScopedStage on the thread that ran the span, so per-thread counters stay
  /// valid even as the trace hops threads between stages.
  void RecordProf(Stage stage, const prof::CounterSet& delta) {
    stage_prof_[static_cast<int>(stage)].Accumulate(delta);
  }

  const prof::CounterSet& stage_prof(Stage stage) const {
    return stage_prof_[static_cast<int>(stage)];
  }

  /// Wall time since construction, in nanoseconds.
  uint64_t ElapsedNs() const;

  // Route flags set as the request moves through the cache layers.
  bool plan_cache_hit = false;
  bool answer_cache_hit = false;

 private:
  std::string id_;
  std::chrono::steady_clock::time_point start_;
  uint64_t stage_ns_[kStageCount] = {};
  prof::CounterSet stage_prof_[kStageCount] = {};
  uint32_t touched_ = 0;
};

/// \brief RAII span: records the scope's duration — and the thread's
/// hardware-counter delta — into `trace` (when non-null) at destruction. The
/// null check makes untraced paths free to instrument. Construction and
/// destruction always happen on the same thread, which is what makes the
/// per-thread counter delta meaningful.
class ScopedStage {
 public:
  ScopedStage(Trace* trace, Stage stage)
      : trace_(trace),
        stage_(stage),
        start_(trace == nullptr ? std::chrono::steady_clock::time_point()
                                : std::chrono::steady_clock::now()),
        prof_start_(trace == nullptr ? prof::CounterSet()
                                     : prof::SampleThreadCounters()) {}
  ~ScopedStage() {
    if (trace_ == nullptr) return;
    trace_->Record(stage_,
                   static_cast<uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count()));
    trace_->RecordProf(stage_, prof::SampleThreadCounters() - prof_start_);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Trace* trace_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
  prof::CounterSet prof_start_;
};

/// \brief Scrape-side aggregation of traces: one registry histogram per stage
/// (dpstarj_stage_duration_seconds{stage=...}) plus one counter per stage per
/// hardware series (dpstarj_stage_cycles_total{stage=...}, ...), resolved
/// once at construction. Construction also publishes the
/// dpstarj_profiler_mode gauge (one child per mode, active mode = 1) so a
/// scrape can tell "zero cycles" apart from "no PMU access".
class StageMetrics {
 public:
  explicit StageMetrics(MetricsRegistry* registry);

  /// Folds every touched stage of a finished trace into the histograms and
  /// counter series.
  void ObserveTrace(const Trace& trace);

 private:
  Histogram* histograms_[kStageCount] = {};
  Counter* cycles_[kStageCount] = {};
  Counter* instructions_[kStageCount] = {};
  Counter* llc_misses_[kStageCount] = {};
  Counter* branch_misses_[kStageCount] = {};
  Counter* task_clock_ns_[kStageCount] = {};
};

}  // namespace dpstarj::obs
