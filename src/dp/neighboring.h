// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The (a,b)-private scenario taxonomy (paper Definition 3.7): which relations
// of the star schema are sensitive. This drives how the output-perturbation
// baselines compute contributions/sensitivities:
//   * (1,0)-private — only the fact table: neighbors differ in one fact row;
//     global sensitivity is bounded and plain Laplace works.
//   * (0,k)-private — k dimension tables: deleting one private dimension tuple
//     per table (sharing a fact-side key conjunction) cascades into the fact
//     table; contribution grouping is by that key conjunction.
//   * (1,k)-private — both; the cascade dominates, so baselines group as in
//     (0,k) and additionally treat each fact row as sensitive.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/star_query.h"

namespace dpstarj::dp {

/// \brief The privacy scenario for a star-join task.
class PrivacyScenario {
 public:
  /// (1,0)-private: only the fact table is sensitive.
  static PrivacyScenario FactOnly(std::string fact_table);

  /// (0,k)-private: the given dimension tables are sensitive (k = |tables|).
  static PrivacyScenario Dimensions(std::vector<std::string> dimension_tables);

  /// (1,k)-private: fact plus the given dimensions.
  static PrivacyScenario FactAndDimensions(std::string fact_table,
                                           std::vector<std::string> dimension_tables);

  /// a ∈ {0,1}: number of private fact tables.
  int a() const { return fact_private_ ? 1 : 0; }
  /// b: number of private dimension tables.
  int b() const { return static_cast<int>(private_dimensions_.size()); }

  bool fact_private() const { return fact_private_; }
  const std::string& fact_table() const { return fact_table_; }
  const std::vector<std::string>& private_dimensions() const {
    return private_dimensions_;
  }

  /// \brief All private tables (fact first if private) — the grouping set for
  /// exec::BuildContributionIndex.
  std::vector<std::string> PrivateTables() const;

  /// \brief Checks the scenario against a query: a+b ≥ 1, the fact table
  /// matches, and every private dimension is joined by the query.
  Status Validate(const query::StarJoinQuery& q) const;

  /// e.g. "(0,2)-private{Customer,Supplier}".
  std::string ToString() const;

 private:
  bool fact_private_ = false;
  std::string fact_table_;
  std::vector<std::string> private_dimensions_;
};

}  // namespace dpstarj::dp
