// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Sensitivity toolbox (paper §3.1): global sensitivity GS_Q, local sensitivity
// LS_Q(D), local sensitivity at distance t, and the β-smooth sensitivity
// SS_Q(D) = max_t e^{-βt}·LS^{(t)}(D). The generic driver takes a callback for
// LS^{(t)} so each query family (join counting, k-star) plugs in its own
// closed form.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace dpstarj::dp {

/// \brief LS at distance t: given t, returns an upper bound on the local
/// sensitivity of any instance within distance t of D.
using LocalSensitivityAtDistance = std::function<double(int64_t t)>;

/// \brief β-smooth sensitivity: max over t ∈ [0, t_max] of e^{-βt}·LS^{(t)}.
///
/// `ls_at_distance` must be non-decreasing in t (it is a max over a growing
/// ball); the scan also stops early once e^{-βt}·LS_max cannot beat the
/// current best, where LS_max bounds LS^{(t)} for all t (pass 0 to disable
/// early stopping).
Result<double> SmoothSensitivity(double beta, int64_t t_max, double ls_max,
                                 const LocalSensitivityAtDistance& ls_at_distance);

/// \brief Smooth sensitivity of the k-star counting query under node privacy
/// on a graph with the given degree sequence (Kasiviswanathan et al. 2013).
///
/// Adding/removing a node of degree d changes the k-star count by
/// C(d, k) + d·C(d_max, k-1)-ish terms; at distance t the adversary can first
/// raise t degrees to d_cap. With degrees truncated at `degree_cap` (the TM
/// baseline truncates first), LS^{(t)} is bounded by
///   C(min(d_max+t, cap), k) + min(d_max+t, cap)·C(min(d_max+t, cap)-1, k-1).
/// Conservative but monotone and cheap; exactly what naive-truncation-with-
/// smooth-sensitivity needs.
Result<double> KStarSmoothSensitivity(const std::vector<int64_t>& degrees, int k,
                                      int64_t degree_cap, double beta);

/// \brief Local sensitivity of a star-join counting/sum query: the maximum
/// contribution of any private individual (see exec::ContributionIndex).
/// Provided here as a thin named wrapper so call sites read like the paper.
double JoinLocalSensitivity(double max_contribution);

}  // namespace dpstarj::dp
