#include "dp/neighboring.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpstarj::dp {

PrivacyScenario PrivacyScenario::FactOnly(std::string fact_table) {
  PrivacyScenario s;
  s.fact_private_ = true;
  s.fact_table_ = std::move(fact_table);
  return s;
}

PrivacyScenario PrivacyScenario::Dimensions(std::vector<std::string> dimension_tables) {
  PrivacyScenario s;
  s.private_dimensions_ = std::move(dimension_tables);
  return s;
}

PrivacyScenario PrivacyScenario::FactAndDimensions(
    std::string fact_table, std::vector<std::string> dimension_tables) {
  PrivacyScenario s;
  s.fact_private_ = true;
  s.fact_table_ = std::move(fact_table);
  s.private_dimensions_ = std::move(dimension_tables);
  return s;
}

std::vector<std::string> PrivacyScenario::PrivateTables() const {
  std::vector<std::string> out;
  if (fact_private_) out.push_back(fact_table_);
  out.insert(out.end(), private_dimensions_.begin(), private_dimensions_.end());
  return out;
}

Status PrivacyScenario::Validate(const query::StarJoinQuery& q) const {
  if (a() + b() < 1) {
    return Status::InvalidArgument("scenario must have at least one private table");
  }
  if (fact_private_ && fact_table_ != q.fact_table) {
    return Status::InvalidArgument(
        Format("scenario fact table '%s' != query fact table '%s'",
               fact_table_.c_str(), q.fact_table.c_str()));
  }
  for (const auto& d : private_dimensions_) {
    // "Table.column" entity specs validate against the table part.
    std::string table = d.substr(0, d.find('.'));
    if (std::find(q.joined_tables.begin(), q.joined_tables.end(), table) ==
        q.joined_tables.end()) {
      return Status::InvalidArgument(
          Format("private dimension '%s' is not joined by the query", d.c_str()));
    }
  }
  return Status::OK();
}

std::string PrivacyScenario::ToString() const {
  std::string out = Format("(%d,%d)-private", a(), b());
  if (!private_dimensions_.empty()) {
    out += "{" + Join(private_dimensions_, ",") + "}";
  }
  return out;
}

}  // namespace dpstarj::dp
