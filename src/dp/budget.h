// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::dp {

/// \brief Sequential-composition privacy accounting (Dwork & Roth, Thm 3.16):
/// a sequence of mechanisms spending ε_1, ..., ε_k on the same data satisfies
/// (Σ ε_i)-DP. The budget tracks spending and refuses overdrafts.
///
/// Spends are accumulated with compensated (Kahan) summation so that millions
/// of tiny ε splits do not drift against the overdraft tolerance — a service
/// accepting 1e6 queries of ε=1e-6 must land on exactly Σ ε_i, not Σ ε_i plus
/// a floating-point random walk.
///
/// Not thread-safe on its own; service::BudgetLedger wraps it in a mutex for
/// multi-tenant concurrent accounting.
class PrivacyBudget {
 public:
  /// Creates a budget of `epsilon` (must be positive).
  explicit PrivacyBudget(double epsilon);

  /// Total budget.
  double total() const { return total_; }
  /// Already consumed.
  double spent() const { return spent_; }
  /// Still available.
  double remaining() const { return total_ - spent_; }

  /// \brief Consumes `epsilon`; BudgetExhausted if it would overdraw (with a
  /// tiny tolerance for floating-point splits that should sum to the total).
  Status Spend(double epsilon);

  /// \brief Returns `epsilon` to the budget — the accounting counterpart of a
  /// query that was admitted but failed before touching the data (bind error,
  /// cancelled work) or was answered from a noisy-answer cache. Refunding more
  /// than was spent is an InvalidArgument: it would mint budget.
  Status Refund(double epsilon);

  /// \brief Splits the *remaining* budget into n equal shares (ε_i = ε/n, the
  /// Predicate Mechanism's allocation) without consuming anything.
  Result<std::vector<double>> SplitRemaining(int n) const;

  /// A human-readable account, e.g. "spent 0.30 of 1.00".
  std::string ToString() const;

 private:
  /// Kahan-adds `delta` (of either sign) into spent_.
  void Accumulate(double delta);

  double total_;
  double spent_ = 0.0;
  double compensation_ = 0.0;  ///< Kahan carry for spent_.
};

}  // namespace dpstarj::dp
