// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::dp {

/// \brief Sequential-composition privacy accounting (Dwork & Roth, Thm 3.16):
/// a sequence of mechanisms spending ε_1, ..., ε_k on the same data satisfies
/// (Σ ε_i)-DP. The budget tracks spending and refuses overdrafts.
class PrivacyBudget {
 public:
  /// Creates a budget of `epsilon` (must be positive).
  explicit PrivacyBudget(double epsilon);

  /// Total budget.
  double total() const { return total_; }
  /// Already consumed.
  double spent() const { return spent_; }
  /// Still available.
  double remaining() const { return total_ - spent_; }

  /// \brief Consumes `epsilon`; BudgetExhausted if it would overdraw (with a
  /// tiny tolerance for floating-point splits that should sum to the total).
  Status Spend(double epsilon);

  /// \brief Splits the *remaining* budget into n equal shares (ε_i = ε/n, the
  /// Predicate Mechanism's allocation) without consuming anything.
  Result<std::vector<double>> SplitRemaining(int n) const;

  /// A human-readable account, e.g. "spent 0.30 of 1.00".
  std::string ToString() const;

 private:
  double total_;
  double spent_ = 0.0;
};

}  // namespace dpstarj::dp
