#include "dp/mechanism.h"

#include <cmath>

namespace dpstarj::dp {

Result<double> LaplaceMechanism::Release(double value, double sensitivity,
                                         double epsilon, Rng* rng) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (sensitivity < 0.0) {
    return Status::InvalidArgument("sensitivity must be non-negative");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  return value + rng->Laplace(sensitivity / epsilon);
}

double LaplaceMechanism::Variance(double sensitivity, double epsilon) {
  double b = sensitivity / epsilon;
  return 2.0 * b * b;
}

double CauchyMechanism::Beta(double epsilon, double gamma) {
  return epsilon / (2.0 * (gamma + 1.0));
}

Result<double> CauchyMechanism::Release(double value, double smooth_sensitivity,
                                        double epsilon, Rng* rng, double gamma) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (smooth_sensitivity < 0.0) {
    return Status::InvalidArgument("smooth sensitivity must be non-negative");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  double beta = Beta(epsilon, gamma);
  return value + rng->GeneralCauchy(gamma, smooth_sensitivity / beta);
}

double CauchyMechanism::NoiseLevel(double smooth_sensitivity, double epsilon,
                                   double gamma) {
  double level = 2.0 * (gamma + 1.0) * smooth_sensitivity / epsilon;
  return level * level;
}

double SmoothLaplaceMechanism::Beta(double epsilon, double delta) {
  return epsilon / (2.0 * std::log(2.0 / delta));
}

Result<double> SmoothLaplaceMechanism::Release(double value,
                                               double smooth_sensitivity,
                                               double epsilon, Rng* rng) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (smooth_sensitivity < 0.0) {
    return Status::InvalidArgument("smooth sensitivity must be non-negative");
  }
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  return value + rng->Laplace(2.0 * smooth_sensitivity / epsilon);
}

}  // namespace dpstarj::dp
