#include "dp/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace dpstarj::dp {

Result<double> SmoothSensitivity(double beta, int64_t t_max, double ls_max,
                                 const LocalSensitivityAtDistance& ls_at_distance) {
  if (beta <= 0.0) return Status::InvalidArgument("beta must be positive");
  if (t_max < 0) return Status::InvalidArgument("t_max must be non-negative");
  if (!ls_at_distance) return Status::InvalidArgument("ls_at_distance is empty");

  double best = 0.0;
  for (int64_t t = 0; t <= t_max; ++t) {
    double decay = std::exp(-beta * static_cast<double>(t));
    if (ls_max > 0.0 && decay * ls_max <= best) {
      break;  // no later t can improve on the current best
    }
    double ls = ls_at_distance(t);
    if (ls < 0.0) {
      return Status::InvalidArgument("ls_at_distance returned a negative bound");
    }
    best = std::max(best, decay * ls);
  }
  return best;
}

Result<double> KStarSmoothSensitivity(const std::vector<int64_t>& degrees, int k,
                                      int64_t degree_cap, double beta) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (degree_cap < 0) return Status::InvalidArgument("degree_cap must be >= 0");
  int64_t d_max = 0;
  for (int64_t d : degrees) d_max = std::max(d_max, std::min(d, degree_cap));

  // At distance t the adversary can raise the effective max degree by t (one
  // edge per step), still capped by the truncation threshold.
  auto ls_at = [&](int64_t t) {
    int64_t d = std::min(d_max + t, degree_cap);
    // Removing a degree-d node deletes C(d, k) stars centered on it plus up to
    // d·C(d-1, k-1) stars centered on its neighbors.
    return BinomialCoefficient(d, k) +
           static_cast<double>(d) * BinomialCoefficient(d - 1, k - 1);
  };
  double ls_cap = ls_at(degree_cap);  // LS^{(t)} plateaus once d_max+t >= cap
  int64_t t_max = std::max<int64_t>(0, degree_cap - d_max) + 1;
  return SmoothSensitivity(beta, t_max, ls_cap, ls_at);
}

double JoinLocalSensitivity(double max_contribution) {
  return std::max(0.0, max_contribution);
}

}  // namespace dpstarj::dp
