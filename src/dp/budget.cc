#include "dp/budget.h"

#include <cmath>

#include "common/string_util.h"

namespace dpstarj::dp {

namespace {
constexpr double kTolerance = 1e-9;
}

PrivacyBudget::PrivacyBudget(double epsilon) : total_(epsilon) {
  DPSTARJ_CHECK(epsilon > 0.0, "privacy budget must be positive");
}

void PrivacyBudget::Accumulate(double delta) {
  // Kahan compensated summation: carry the low-order bits lost by each
  // addition so a long run of tiny spends sums to machine precision.
  double y = delta - compensation_;
  double t = spent_ + y;
  compensation_ = (t - spent_) - y;
  spent_ = t;
}

Status PrivacyBudget::Spend(double epsilon) {
  // NaN must be refused explicitly: it sails through `<= 0.0` and, once added
  // to spent_, makes every future overdraft comparison false — an account
  // that admits everything. Fatal for a privacy accountant.
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("spend must be positive and finite");
  }
  if (spent_ + epsilon > total_ + kTolerance) {
    return Status::BudgetExhausted(
        Format("requested %.6g but only %.6g of %.6g remains", epsilon, remaining(),
               total_));
  }
  Accumulate(epsilon);
  return Status::OK();
}

Status PrivacyBudget::Refund(double epsilon) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("refund must be positive and finite");
  }
  if (epsilon > spent_ + kTolerance) {
    return Status::InvalidArgument(
        Format("refund of %.6g exceeds the %.6g spent", epsilon, spent_));
  }
  Accumulate(-epsilon);
  if (spent_ < 0.0) {  // guard the tolerance window from going negative
    spent_ = 0.0;
    compensation_ = 0.0;
  }
  return Status::OK();
}

Result<std::vector<double>> PrivacyBudget::SplitRemaining(int n) const {
  if (n <= 0) return Status::InvalidArgument("split count must be positive");
  if (remaining() <= kTolerance) {
    return Status::BudgetExhausted("no budget remaining to split");
  }
  return std::vector<double>(static_cast<size_t>(n),
                             remaining() / static_cast<double>(n));
}

std::string PrivacyBudget::ToString() const {
  return Format("spent %.4g of %.4g", spent_, total_);
}

}  // namespace dpstarj::dp
