#include "dp/budget.h"

#include "common/string_util.h"

namespace dpstarj::dp {

namespace {
constexpr double kTolerance = 1e-9;
}

PrivacyBudget::PrivacyBudget(double epsilon) : total_(epsilon) {
  DPSTARJ_CHECK(epsilon > 0.0, "privacy budget must be positive");
}

Status PrivacyBudget::Spend(double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("spend must be positive");
  }
  if (spent_ + epsilon > total_ + kTolerance) {
    return Status::BudgetExhausted(
        Format("requested %.6g but only %.6g of %.6g remains", epsilon, remaining(),
               total_));
  }
  spent_ += epsilon;
  return Status::OK();
}

Result<std::vector<double>> PrivacyBudget::SplitRemaining(int n) const {
  if (n <= 0) return Status::InvalidArgument("split count must be positive");
  if (remaining() <= kTolerance) {
    return Status::BudgetExhausted("no budget remaining to split");
  }
  return std::vector<double>(static_cast<size_t>(n),
                             remaining() / static_cast<double>(n));
}

std::string PrivacyBudget::ToString() const {
  return Format("spent %.4g of %.4g", spent_, total_);
}

}  // namespace dpstarj::dp
