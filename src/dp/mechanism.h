// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The noise-release primitives (paper §3.1 / §4):
//  * Laplace mechanism — ε-DP with noise Lap(GS/ε), variance 2(GS/ε)²;
//  * Cauchy mechanism — ε-DP when calibrated to a β-smooth sensitivity bound
//    with β = ε/(2(γ+1)); γ = 4 gives the "noise level (10·SS/ε)²" the paper
//    quotes for the LS baseline;
//  * Smoothed Laplace — (ε,δ)-DP with β = ε/(2·ln(2/δ)), noise Lap(2·SS/ε).

#pragma once

#include "common/random.h"
#include "common/result.h"

namespace dpstarj::dp {

/// \brief ε-DP Laplace release: value + Lap(sensitivity/ε).
class LaplaceMechanism {
 public:
  /// Fails on non-positive epsilon or negative sensitivity.
  static Result<double> Release(double value, double sensitivity, double epsilon,
                                Rng* rng);
  /// Noise variance 2·(sensitivity/ε)².
  static double Variance(double sensitivity, double epsilon);
};

/// \brief ε-DP general-Cauchy release on a β-smooth sensitivity bound.
class CauchyMechanism {
 public:
  /// Default tail exponent (paper §4 sets γ = 4 so Var(Cauchy) = 1).
  static constexpr double kDefaultGamma = 4.0;

  /// \brief β for a given ε and γ: β = ε / (2(γ+1)). The smooth-sensitivity
  /// computation must use this β for the release to be ε-DP.
  static double Beta(double epsilon, double gamma = kDefaultGamma);

  /// value + GeneralCauchy(γ) · smooth_sensitivity/β.
  static Result<double> Release(double value, double smooth_sensitivity,
                                double epsilon, Rng* rng,
                                double gamma = kDefaultGamma);

  /// Nominal noise level ((2(γ+1))·SS/ε)² — (10·SS/ε)² at γ = 4.
  static double NoiseLevel(double smooth_sensitivity, double epsilon,
                           double gamma = kDefaultGamma);
};

/// \brief (ε,δ)-DP Laplace release on a β-smooth sensitivity bound:
/// β = ε/(2·ln(2/δ)), noise Lap(2·SS/ε).
class SmoothLaplaceMechanism {
 public:
  /// β for a given ε and δ.
  static double Beta(double epsilon, double delta);

  /// value + Lap(2·SS/ε).
  static Result<double> Release(double value, double smooth_sensitivity,
                                double epsilon, Rng* rng);
};

}  // namespace dpstarj::dp
