#include "exec/naive_executor.h"

#include "common/string_util.h"
#include "storage/value.h"

namespace dpstarj::exec {

namespace {

// Linear search for `key` in the dimension's primary-key column.
int64_t FindDimRow(const query::DimBinding& d, int64_t key) {
  const auto& pk = d.dim->column(d.dim_pk_col).int64_data();
  for (size_t r = 0; r < pk.size(); ++r) {
    if (pk[r] == key) return static_cast<int64_t>(r);
  }
  return -1;
}

// Evaluates a bound predicate against one dimension row by re-deriving the
// domain ordinal from the raw cell (independent of ComputeDomainIndexes).
bool RowPasses(const query::DimBinding& d, const query::BoundPredicate& pred,
               int64_t row) {
  storage::Value v = d.dim->column(pred.column_index).GetValue(row);
  auto ord = pred.domain.IndexOf(v);
  if (!ord.ok()) return false;
  return pred.Matches(*ord);
}

}  // namespace

Result<QueryResult> ExecuteNaive(const query::BoundQuery& q) {
  return ExecuteNaive(q, PredicateOverrides(q.dims.size()));
}

Result<QueryResult> ExecuteNaive(const query::BoundQuery& q,
                                 const PredicateOverrides& overrides) {
  if (!overrides.empty() && overrides.size() != q.dims.size()) {
    return Status::InvalidArgument("override arity mismatch");
  }
  QueryResult result;
  result.grouped = !q.group_key_layout.empty();
  const bool is_avg = q.query.aggregate == query::AggregateKind::kAvg;
  double avg_rows = 0.0;
  std::map<std::string, double> group_rows;

  for (int64_t row = 0; row < q.fact->num_rows(); ++row) {
    bool pass = true;
    std::vector<int64_t> dim_rows(q.dims.size(), -1);
    for (size_t i = 0; i < q.dims.size(); ++i) {
      const query::DimBinding& d = q.dims[i];
      int64_t key = q.fact->column(d.fact_fk_col).GetInt64(row);
      int64_t dim_row = FindDimRow(d, key);
      if (dim_row < 0) {
        pass = false;
        break;
      }
      dim_rows[i] = dim_row;
      const std::vector<query::BoundPredicate>* preds = &d.predicates;
      if (!overrides.empty() && overrides[i].has_value()) {
        preds = &*overrides[i];
      }
      for (const auto& pred : *preds) {
        if (!RowPasses(d, pred, dim_row)) {
          pass = false;
          break;
        }
      }
      if (!pass) break;
    }
    if (!pass) continue;

    double w = 1.0;
    if (!q.measure_cols.empty()) {
      w = 0.0;
      for (const auto& [col, coeff] : q.measure_cols) {
        w += coeff * q.fact->column(col).GetNumeric(row);
      }
    }
    if (!result.grouped) {
      result.scalar += w;
      avg_rows += 1.0;
      continue;
    }
    std::string label;
    for (const auto& [dim_idx, col] : q.group_key_layout) {
      if (!label.empty()) label += kGroupKeyDelimiter;
      if (dim_idx < 0) {
        label += q.fact->column(col).GetValue(row).ToString();
      } else {
        const query::DimBinding& d = q.dims[static_cast<size_t>(dim_idx)];
        label += d.dim->column(col)
                     .GetValue(dim_rows[static_cast<size_t>(dim_idx)])
                     .ToString();
      }
    }
    result.groups[label] += w;
    if (is_avg) group_rows[label] += 1.0;
  }

  if (is_avg) {
    if (!result.grouped) {
      result.scalar = avg_rows > 0.0 ? result.scalar / avg_rows : 0.0;
    } else {
      for (auto& [label_key, sum] : result.groups) {
        sum /= group_rows[label_key];
      }
    }
  }
  return result;
}

}  // namespace dpstarj::exec
