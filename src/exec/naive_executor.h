// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// A deliberately naive nested-loop reference executor. O(F · Σ|dims|) — used
// by tests to cross-check StarJoinExecutor on small instances, sharing no
// code with the hash-join path.

#pragma once

#include "common/result.h"
#include "exec/query_result.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Nested-loop evaluation of a bound star-join query.
Result<QueryResult> ExecuteNaive(const query::BoundQuery& q);

/// \brief Nested-loop evaluation with predicate overrides (same contract as
/// StarJoinExecutor::Execute).
Result<QueryResult> ExecuteNaive(const query::BoundQuery& q,
                                 const PredicateOverrides& overrides);

}  // namespace dpstarj::exec
