#include "exec/workload_plan.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "common/string_util.h"
#include "exec/group_code.h"
#include "exec/kernels/kernels.h"
#include "exec/parallel.h"

namespace dpstarj::exec {

namespace {

// The effective predicate list of item dimension i (overrides win).
const std::vector<query::BoundPredicate>& EffectiveItemPreds(
    const WorkloadItem& it, size_t i) {
  if (it.overrides != nullptr && !it.overrides->empty() &&
      (*it.overrides)[i].has_value()) {
    return *(*it.overrides)[i];
  }
  return it.query->dims[i].predicates;
}

// Canonical order for interning: two queries listing the same predicates in
// different order still share one node. Evaluation is an AND across the
// list, so reordering never changes the bitmap.
void CanonicalizePreds(std::vector<query::BoundPredicate>* preds) {
  std::sort(preds->begin(), preds->end(),
            [](const query::BoundPredicate& a, const query::BoundPredicate& b) {
              return std::tie(a.column_index, a.lo_index, a.hi_index) <
                     std::tie(b.column_index, b.lo_index, b.hi_index);
            });
}

// Structural equality of two canonicalized lists. Predicate kind is ignored:
// evaluation depends only on (column, domain, lo, hi), so a Point and a
// degenerate Range with equal bounds are the same node.
bool SamePredList(const std::vector<query::BoundPredicate>& a,
                  const std::vector<query::BoundPredicate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t p = 0; p < a.size(); ++p) {
    if (a[p].column_index != b[p].column_index ||
        a[p].lo_index != b[p].lo_index || a[p].hi_index != b[p].hi_index ||
        !(a[p].domain == b[p].domain)) {
      return false;
    }
  }
  return true;
}

// Per-(worker, item) scan partial; merged in worker order like ScanPartial.
// Aligned to a cache line so the slots at the seam of two workers' partial
// vectors (allocated back-to-back) never share one — scalar/rows are bumped
// on every surviving verdict word.
struct alignas(64) ItemPartial {
  double scalar = 0.0;
  int64_t rows = 0;
  std::unique_ptr<GroupAccumulator> groups;
};

}  // namespace

Result<WorkloadPlan> WorkloadPlan::Compile(std::vector<WorkloadItem> items) {
  if (items.empty()) {
    return Status::InvalidArgument("workload batch is empty");
  }
  WorkloadPlan wp;
  wp.items_ = std::move(items);
  wp.stats_.queries = static_cast<int64_t>(wp.items_.size());

  for (size_t k = 0; k < wp.items_.size(); ++k) {
    const WorkloadItem& it = wp.items_[k];
    if (it.query == nullptr || it.plan == nullptr) {
      return Status::InvalidArgument(
          Format("workload item %zu is missing its query or plan", k));
    }
    if (it.plan->requires_scalar()) {
      return Status::InvalidArgument(
          Format("workload item %zu requires the scalar pipeline; "
                 "execute it through the single-query path",
                 k));
    }
    if (!it.plan->Matches(*it.query)) {
      return Status::InvalidArgument(
          Format("scan plan is stale for workload item %zu (a table changed "
                 "since compile); recompile via PlanCache::GetOrCompile",
                 k));
    }
    if (it.overrides != nullptr && !it.overrides->empty() &&
        it.overrides->size() != it.query->dims.size()) {
      return Status::InvalidArgument(
          Format("workload item %zu: override arity %zu != dimension count %zu",
                 k, it.overrides->size(), it.query->dims.size()));
    }

    // One scan group per distinct fact table, in first-occurrence order.
    const storage::Table* fact = it.query->fact.get();
    ScanGroup* g = nullptr;
    for (auto& group : wp.groups_) {
      if (group.fact == fact) {
        g = &group;
        break;
      }
    }
    if (g == nullptr) {
      wp.groups_.emplace_back();
      g = &wp.groups_.back();
      g->fact = fact;
      g->fact_rows = it.plan->fact_rows();
    }
    if (g->fact_rows != it.plan->fact_rows()) {
      return Status::InvalidArgument(
          Format("workload item %zu: fact row count disagrees with an earlier "
                 "item's plan (table changed mid-batch)",
                 k));
    }

    ItemWiring w;
    w.item_idx = k;
    w.nodes.reserve(it.query->dims.size());
    for (size_t i = 0; i < it.query->dims.size(); ++i) {
      const query::DimBinding& d = it.query->dims[i];
      const int32_t sentinel = it.plan->dims[i].num_rows;

      // Intern the (dimension table, FK column) slot.
      size_t slot = g->slots.size();
      for (size_t s = 0; s < g->slots.size(); ++s) {
        if (g->slots[s].dim_table == d.dim.get() &&
            g->slots[s].fact_fk_col == d.fact_fk_col) {
          slot = s;
          break;
        }
      }
      if (slot == g->slots.size()) {
        Slot s;
        s.dim_table = d.dim.get();
        s.fact_fk_col = d.fact_fk_col;
        s.item_idx = k;
        s.dim_idx = i;
        s.sentinel = sentinel;
        g->slots.push_back(s);
        wp.stats_.shared_dim_slots += 1;
      } else if (g->slots[slot].sentinel != sentinel) {
        return Status::InvalidArgument(
            Format("workload item %zu: dimension '%s' row count disagrees "
                   "with an earlier item's plan (table changed mid-batch)",
                   k, d.table.c_str()));
      }

      // Intern the canonicalized effective predicate list as a node.
      std::vector<query::BoundPredicate> preds = EffectiveItemPreds(it, i);
      CanonicalizePreds(&preds);
      size_t node = g->nodes.size();
      for (size_t n = 0; n < g->nodes.size(); ++n) {
        if (g->nodes[n].slot == slot && SamePredList(g->nodes[n].preds, preds)) {
          node = n;
          break;
        }
      }
      if (node == g->nodes.size()) {
        Node nd;
        nd.slot = slot;
        nd.item_idx = k;
        nd.dim_idx = i;
        nd.preds = std::move(preds);
        g->nodes.push_back(std::move(nd));
        wp.stats_.predicate_nodes += 1;
      }
      w.nodes.push_back(static_cast<uint32_t>(node));
      wp.stats_.predicate_refs += 1;
    }
    g->wiring.push_back(std::move(w));
  }
  wp.stats_.scans = static_cast<int64_t>(wp.groups_.size());
  return wp;
}

Result<std::vector<QueryResult>> WorkloadPlan::Execute(
    const ExecutorOptions& options, obs::Trace* trace) const {
  if (options.strict_integrity) {
    return Status::InvalidArgument(
        "strict integrity is not supported by the shared-scan batch path; "
        "execute strict queries through the single-query path");
  }
  std::vector<QueryResult> results(items_.size());

  for (const ScanGroup& g : groups_) {
    const size_t num_slots = g.slots.size();
    const size_t num_nodes = g.nodes.size();
    const size_t num_items = g.wiring.size();

    // ---- the CSE payoff: one bitmap build per deduped node, shared by
    // every item referencing it.
    std::vector<std::vector<uint64_t>> bitmaps(num_nodes);
    {
      obs::ScopedStage bitmap_span(trace, obs::Stage::kBitmapRebuild);
      for (size_t n = 0; n < num_nodes; ++n) {
        const Node& nd = g.nodes[n];
        const WorkloadItem& owner = items_[nd.item_idx];
        DPSTARJ_ASSIGN_OR_RETURN(
            bitmaps[n],
            BuildPassBitmap(owner.plan->dims[nd.dim_idx],
                            *g.slots[nd.slot].dim_table, nd.preds));
      }
    }
    obs::ScopedStage scan_span(trace, obs::Stage::kScan);

    // ---- hoisted per-slot / per-node / per-item scan state.
    std::vector<const int32_t*> slot_rows(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      const Slot& slot = g.slots[s];
      slot_rows[s] =
          items_[slot.item_idx].plan->fact_dim_row[slot.dim_idx].data();
    }
    std::vector<const uint64_t*> node_words(num_nodes);
    std::vector<uint32_t> node_slot(num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) {
      node_words[n] = bitmaps[n].data();
      node_slot[n] = static_cast<uint32_t>(g.nodes[n].slot);
    }
    // ---- per-slot verdict tables: one word per dimension row packing the
    // verdict bit of every node on that slot. The sweep then probes each
    // shared slot ONCE per fact row — cost independent of how many deduped
    // predicates reference it — and transposes the packed words in-register.
    // Falls back to per-node bitmap probing past 64 nodes on one slot.
    std::vector<std::vector<uint32_t>> slot_nodes(num_slots);
    for (size_t n = 0; n < num_nodes; ++n) {
      slot_nodes[node_slot[n]].push_back(static_cast<uint32_t>(n));
    }
    bool slot_tables_ok = true;
    for (const auto& sn : slot_nodes) {
      if (sn.size() > 64) slot_tables_ok = false;
    }
    std::vector<std::vector<uint64_t>> slot_tables(num_slots);
    std::vector<std::vector<uint8_t>> slot_tables8(num_slots);
    if (slot_tables_ok) {
      for (size_t s = 0; s < num_slots; ++s) {
        const size_t nn = slot_nodes[s].size();
        if (nn == 0) continue;
        const size_t dim_rows = bitmaps[slot_nodes[s][0]].size() * 64;
        // Up to 8 nodes fit a byte-wide table, which the sweep can gather
        // 8 rows at a time with a multiply trick; wider slots take the
        // word-wide table and a plain bit transpose.
        if (nn <= 8) {
          slot_tables8[s].assign(dim_rows, 0);
        } else {
          slot_tables[s].assign(dim_rows, 0);
        }
        for (size_t k = 0; k < nn; ++k) {
          const uint64_t* words = node_words[slot_nodes[s][k]];
          for (size_t dr = 0; dr < dim_rows; ++dr) {
            const uint64_t bit = (words[dr >> 6] >> (dr & 63)) & uint64_t{1};
            if (nn <= 8) {
              slot_tables8[s][dr] |= static_cast<uint8_t>(bit << k);
            } else {
              slot_tables[s][dr] |= bit << k;
            }
          }
        }
      }
    }
    // Item node lists flattened for a tight inner loop.
    std::vector<size_t> item_node_begin(num_items + 1, 0);
    std::vector<uint32_t> item_nodes;
    std::vector<const uint64_t*> item_codes(num_items, nullptr);
    std::vector<const double*> item_weights(num_items, nullptr);
    std::vector<uint8_t> item_grouped(num_items, 0);
    for (size_t j = 0; j < num_items; ++j) {
      const ItemWiring& w = g.wiring[j];
      const WorkloadItem& it = items_[w.item_idx];
      item_node_begin[j] = item_nodes.size();
      item_nodes.insert(item_nodes.end(), w.nodes.begin(), w.nodes.end());
      item_grouped[j] = it.plan->grouped ? 1 : 0;
      if (it.plan->grouped) item_codes[j] = it.plan->codes.data();
      if (!it.plan->weights.empty()) item_weights[j] = it.plan->weights.data();
    }
    item_node_begin[num_items] = item_nodes.size();

    // ---- the single shared sweep, accumulating every item at once.
    const int num_workers = MorselPool::ResolveWorkers(
        options.exec_threads, options.morsel_size, g.fact_rows);
    const uint64_t dense_limit =
        static_cast<uint64_t>(g.fact_rows / std::max(num_workers, 1)) * 4 +
        1024;
    std::vector<std::vector<ItemPartial>> partials(
        static_cast<size_t>(num_workers));
    for (auto& per_item : partials) {
      per_item.resize(num_items);
      for (size_t j = 0; j < num_items; ++j) {
        if (item_grouped[j]) {
          per_item[j].groups = std::make_unique<GroupAccumulator>(
              items_[g.wiring[j].item_idx].plan->code_space, dense_limit);
        }
      }
    }
    // Block-vectorized sweep with bit-packed verdicts: per block, each
    // deduped node probes its bitmap ONCE per row (this is where the CSE
    // pays at scan time, not just at build time) and packs the verdicts
    // into uint64 words. Combining an item's nodes is then one AND per 64
    // rows, counts reduce to popcounts, and non-count accumulation walks
    // only the PASSING rows via count-trailing-zeros — in ascending row
    // order, so merged results stay deterministic and (for exact
    // aggregates) bit-identical to the single-query path.
    constexpr int64_t kBlock = 1024;
    constexpr int kWordsPerBlock = static_cast<int>(kBlock / 64);
    std::vector<std::vector<uint64_t>> verdict_scratch(
        static_cast<size_t>(num_workers),
        std::vector<uint64_t>(num_nodes * static_cast<size_t>(kWordsPerBlock)));

    const auto& kern = kernels::ActiveKernels();
    auto scan = [&](int worker, int64_t begin, int64_t end) {
      std::vector<ItemPartial>& ps = partials[static_cast<size_t>(worker)];
      uint64_t* verdict = verdict_scratch[static_cast<size_t>(worker)].data();
      for (int64_t b0 = begin; b0 < end; b0 += kBlock) {
        const int len = static_cast<int>(std::min(kBlock, end - b0));
        const int nwords = (len + 63) / 64;
        // Each node's verdict bits for this block. An absent FK lands on
        // the sentinel row, whose bit in every node bitmap is 0. Bits past
        // `len` in the tail word stay 0.
        if (slot_tables_ok) {
          // One table probe per (row, slot); the probed word carries every
          // node-on-that-slot verdict, transposed here into per-node words.
          for (size_t s = 0; s < num_slots; ++s) {
            const size_t nn = slot_nodes[s].size();
            if (nn == 0) continue;
            const int32_t* rows_for = slot_rows[s] + b0;
            if (!slot_tables8[s].empty()) {
              // Byte-table path: the dispatched byte_gather_transpose kernel
              // gathers 64 verdict bytes and pulls bit k of every byte into
              // node k's packed word (SWAR multiply on scalar, vpmovmskb
              // transpose on AVX2); the per-node words then scatter into the
              // verdict scratch rows.
              const uint8_t* table = slot_tables8[s].data();
              uint64_t node_bits[8];
              for (int wi = 0; wi < nwords; ++wi) {
                const int i0 = wi * 64;
                const int i1 = std::min(len, i0 + 64);
                kern.byte_gather_transpose(table, rows_for + i0, i1 - i0, nn,
                                           node_bits);
                for (size_t k = 0; k < nn; ++k) {
                  verdict[slot_nodes[s][k] *
                              static_cast<size_t>(kWordsPerBlock) +
                          wi] = node_bits[k];
                }
              }
              continue;
            }
            const uint64_t* table = slot_tables[s].data();
            for (int wi = 0; wi < nwords; ++wi) {
              const int i0 = wi * 64;
              const int i1 = std::min(len, i0 + 64);
              uint64_t vbuf[64];
              for (int i = i0; i < i1; ++i) vbuf[i - i0] = table[rows_for[i]];
              for (int i = i1 - i0; i < 64; ++i) vbuf[i] = 0;
              for (size_t k = 0; k < nn; ++k) {
                uint64_t bits = 0;
                for (int i = 0; i < 64; ++i) {
                  bits |= ((vbuf[i] >> k) & uint64_t{1})
                          << static_cast<unsigned>(i);
                }
                verdict[slot_nodes[s][k] * static_cast<size_t>(kWordsPerBlock)
                        + wi] = bits;
              }
            }
          }
        } else {
          for (size_t n = 0; n < num_nodes; ++n) {
            const int32_t* rows_for = slot_rows[node_slot[n]] + b0;
            const uint64_t* words = node_words[n];
            uint64_t* out = verdict + n * static_cast<size_t>(kWordsPerBlock);
            for (int wi = 0; wi < nwords; ++wi) {
              const int i0 = wi * 64;
              const int i1 = std::min(len, i0 + 64);
              uint64_t bits = 0;
              for (int i = i0; i < i1; ++i) {
                const int32_t dr = rows_for[i];
                bits |= ((words[dr >> 6] >> (dr & 63)) & uint64_t{1})
                        << static_cast<unsigned>(i - i0);
              }
              out[wi] = bits;
            }
          }
        }
        // Each item ANDs its nodes' verdict words and accumulates the
        // surviving rows.
        for (size_t j = 0; j < num_items; ++j) {
          const size_t nb = item_node_begin[j];
          const size_t ne = item_node_begin[j + 1];
          ItemPartial& p = ps[j];
          const double* weights = item_weights[j];
          const bool grouped = item_grouped[j];
          for (int wi = 0; wi < nwords; ++wi) {
            const int i0 = wi * 64;
            const int nbits = std::min(64, len - i0);
            // Seeding with the tail mask makes a node-less item (join-only
            // queries whose predicates all interned away) pass every row.
            uint64_t pw =
                nbits == 64 ? ~uint64_t{0} : (uint64_t{1} << nbits) - 1;
            for (size_t x = nb; x < ne; ++x) {
              pw &= verdict[item_nodes[x] * static_cast<size_t>(kWordsPerBlock)
                            + wi];
            }
            if (pw == 0) continue;
            if (!grouped && weights == nullptr) {
              // Exact count: integer-valued sums commute bit-exactly, so a
              // word subtotal is safe.
              const int cnt = __builtin_popcountll(pw);
              p.scalar += static_cast<double>(cnt);
              p.rows += cnt;
              continue;
            }
            const int64_t base = b0 + i0;
            do {
              const int bit = __builtin_ctzll(pw);
              pw &= pw - 1;
              const int64_t row = base + bit;
              const double w = weights != nullptr ? weights[row] : 1.0;
              if (grouped) {
                p.groups->Add(item_codes[j][row], w);
              } else {
                p.scalar += w;
                p.rows += 1;
              }
            } while (pw != 0);
          }
        }
      }
    };
    MorselPool::Shared().Run(num_workers, g.fact_rows, options.morsel_size,
                             scan);

    // ---- deterministic per-item merges, in worker order.
    for (size_t j = 0; j < num_items; ++j) {
      const WorkloadItem& it = items_[g.wiring[j].item_idx];
      const bool is_avg =
          it.query->query.aggregate == query::AggregateKind::kAvg;
      QueryResult& out = results[g.wiring[j].item_idx];
      if (!item_grouped[j]) {
        double scalar = 0.0;
        int64_t rows = 0;
        for (const auto& per_item : partials) {
          scalar += per_item[j].scalar;
          rows += per_item[j].rows;
        }
        out.scalar = is_avg
                         ? (rows > 0 ? scalar / static_cast<double>(rows) : 0.0)
                         : scalar;
        continue;
      }
      GroupAccumulator& merged = *partials[0][j].groups;
      for (size_t p = 1; p < partials.size(); ++p) {
        merged.MergeFrom(*partials[p][j].groups);
      }
      out = RenderPlanGroups(*it.query, *it.plan, merged, is_avg);
    }
  }
  return results;
}

}  // namespace dpstarj::exec
