// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The star-join executor: evaluates a bound star-join query with hash
// semi-joins. For each dimension it compiles the predicate verdicts into a
// dense FK-indexed table (pass bit fused with a small-int group ordinal), then
// streams the fact table in morsels — optionally in parallel — combining
// verdicts with one array probe per dimension, accumulating COUNT/SUM per
// packed uint64 group code and rendering string group labels once per group
// at the end (see exec/group_code.h, exec/parallel.h).
//
// The executor accepts *predicate overrides* so that DP mechanisms can run
// the same plan under perturbed predicates (the heart of DP-starJ's input
// perturbation) without re-binding. The DP layer is post-processing-safe, so
// executor strategy (scalar vs vectorized, thread count) never changes noise
// semantics — only throughput.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "exec/parallel.h"
#include "exec/query_result.h"
#include "exec/scan_plan.h"
#include "obs/trace.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Per-dimension predicate replacements, aligned with BoundQuery::dims.
///
/// Entry semantics: nullopt = keep the dimension's own predicates; an engaged
/// vector replaces them wholesale (possibly with a different count, possibly
/// empty = no filtering on that dimension).
using DimPredicateOverride = std::optional<std::vector<query::BoundPredicate>>;
using PredicateOverrides = std::vector<DimPredicateOverride>;

/// \brief Options for the executor.
struct ExecutorOptions {
  /// When true, fact rows whose foreign key misses the dimension hash table
  /// are an error (they violate referential integrity). When false they are
  /// silently dropped, matching SQL inner-join semantics.
  bool strict_integrity = false;

  /// Worker threads for the fact scan. 1 (default) runs on the calling
  /// thread; 0 means one worker per hardware thread. Results are
  /// deterministic for any fixed value: morsels are statically assigned and
  /// worker partials merge in worker order, so aggregates whose additions are
  /// exact (COUNT, integer-valued SUM) are identical across thread counts,
  /// and inexact floating-point SUMs are reproducible run-to-run.
  int exec_threads = 1;

  /// Rows per scan morsel (parallel granularity). The default is sized to
  /// the detected per-core L2 (exec/parallel.h, DefaultMorselSize).
  int64_t morsel_size = DefaultMorselSize();

  /// Forces the legacy row-at-a-time pipeline (kept for benchmarking and as
  /// the automatic fallback when a GROUP BY key set cannot be packed into a
  /// 64-bit group code, e.g. grouping on an unbounded double fact column).
  bool force_scalar = false;
};

/// \brief Hash-join star-join evaluation.
class StarJoinExecutor {
 public:
  explicit StarJoinExecutor(ExecutorOptions options = {}) : options_(options) {}

  /// Evaluates the query as bound.
  Result<QueryResult> Execute(const query::BoundQuery& q) const;

  /// Evaluates with per-dimension predicate overrides (for DP mechanisms).
  Result<QueryResult> Execute(const query::BoundQuery& q,
                              const PredicateOverrides& overrides) const;

  /// \brief Evaluates against a pre-compiled ScanPlan (see exec/scan_plan.h):
  /// only the per-dimension predicate bitmaps are rebuilt, and the fact scan
  /// is gathers into them plus the plan's pre-packed codes and weights — the
  /// repeated-noisy-execution fast path of the Predicate Mechanism. The plan
  /// must have been compiled for `q`'s tables (checked; a stale plan is
  /// refused rather than silently mis-answered).
  ///
  /// Equivalence with the fresh-build Execute: exact aggregates (COUNT,
  /// integer-valued SUM) are bit-identical at every thread count; inexact
  /// grouped SUMs follow the plan's run-sorted sweep, which associates each
  /// group's additions in a fixed chunked order (≤64-row chunks in row
  /// order; all-pass chunks accumulate in the kernel layer's pinned
  /// four-lane split — see exec/kernels/kernels.h) that is identical at
  /// every worker count and on every ISA. Strict-integrity violations are
  /// reported with the exact row/dimension/message of the fresh pipeline.
  ///
  /// A non-null `trace` records the bitmap-rebuild and fact-sweep spans
  /// (obs::Stage::kBitmapRebuild / kScan); execution is unchanged otherwise.
  Result<QueryResult> Execute(const query::BoundQuery& q,
                              const PredicateOverrides& overrides,
                              const ScanPlan& plan,
                              obs::Trace* trace = nullptr) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  ExecutorOptions options_;
};

/// \brief Renders a merged plan-path group accumulator into a QueryResult:
/// labels are rendered once per group from the plan's layout and label parts
/// and merged by rendered label (distinct codes can format identically),
/// exactly the legacy per-row semantics. Shared by the executor's probing
/// plan path and the shared-scan batch path (exec/workload_plan.h).
QueryResult RenderPlanGroups(const query::BoundQuery& q, const ScanPlan& plan,
                             const GroupAccumulator& merged, bool is_avg);

}  // namespace dpstarj::exec
