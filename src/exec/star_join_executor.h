// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The star-join executor: evaluates a bound star-join query with hash
// semi-joins. For each dimension it builds a key → (predicate pass, row)
// table, then streams the fact table once, combining predicate verdicts,
// accumulating COUNT/SUM and assembling GROUP BY keys.
//
// The executor accepts *predicate overrides* so that DP mechanisms can run
// the same plan under perturbed predicates (the heart of DP-starJ's input
// perturbation) without re-binding.

#pragma once

#include <optional>
#include <vector>

#include "common/result.h"
#include "exec/query_result.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Per-dimension predicate replacements, aligned with BoundQuery::dims.
///
/// Entry semantics: nullopt = keep the dimension's own predicates; an engaged
/// vector replaces them wholesale (possibly with a different count, possibly
/// empty = no filtering on that dimension).
using DimPredicateOverride = std::optional<std::vector<query::BoundPredicate>>;
using PredicateOverrides = std::vector<DimPredicateOverride>;

/// \brief Options for the executor.
struct ExecutorOptions {
  /// When true, fact rows whose foreign key misses the dimension hash table
  /// are an error (they violate referential integrity). When false they are
  /// silently dropped, matching SQL inner-join semantics.
  bool strict_integrity = false;
};

/// \brief Hash-join star-join evaluation.
class StarJoinExecutor {
 public:
  explicit StarJoinExecutor(ExecutorOptions options = {}) : options_(options) {}

  /// Evaluates the query as bound.
  Result<QueryResult> Execute(const query::BoundQuery& q) const;

  /// Evaluates with per-dimension predicate overrides (for DP mechanisms).
  Result<QueryResult> Execute(const query::BoundQuery& q,
                              const PredicateOverrides& overrides) const;

 private:
  ExecutorOptions options_;
};

}  // namespace dpstarj::exec
