#include "exec/plan_cache.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpstarj::exec {

namespace {

// Cache key: exactly the things a ScanPlan's scaffold is laid out by —
// tables in the bound query's *internal* join order (fact_dim_row is
// indexed by dim position), the FK/PK column pairing, the GROUP BY layout,
// measure terms in order, and the predicate (column, domain) sets (the
// memoized ordinal tables). Predicate *bounds* are deliberately omitted:
// every field of a plan is bound-independent, so a popular query
// re-filtered with different constants — and every noisy Predicate
// Mechanism re-execution — shares one compiled plan. Within a dimension the
// predicate signatures are sorted, so conjunction order does not split the
// cache. Two queries that differ only in aggregate kind (SUM vs AVG over
// the same measures) also share: the aggregate is applied at execution.
std::string PlanKey(const query::BoundQuery& q) {
  // Tables are identified by *object*, not name, matching ScanPlan::Matches:
  // one cache may serve engines over several catalogs (per-tenant instances
  // with identical schemas), and name-keyed entries would invalidation-
  // thrash between them.
  std::string key = Format("fact:%p", static_cast<const void*>(q.fact.get()));
  std::vector<std::string> pred_sigs;
  for (const auto& d : q.dims) {
    key += Format("|dim:%p@%d/%d", static_cast<const void*>(d.dim.get()),
                  d.fact_fk_col, d.dim_pk_col);
    pred_sigs.clear();
    pred_sigs.reserve(d.predicates.size());
    for (const auto& p : d.predicates) {
      pred_sigs.push_back(Format("%d:", p.column_index) + p.domain.ToString());
    }
    std::sort(pred_sigs.begin(), pred_sigs.end());
    for (const auto& sig : pred_sigs) {
      key += ';';
      key += sig;
    }
  }
  key += "|group:";
  for (const auto& [dim_idx, col] : q.group_key_layout) {
    key += Format("%d.%d,", dim_idx, col);
  }
  key += "|measure:";
  for (const auto& [col, coeff] : q.measure_cols) {
    key += Format("%d*%.17g,", col, coeff);
  }
  return key;
}

}  // namespace

PlanCache::PlanCache(size_t capacity, size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

Result<std::shared_ptr<const ScanPlan>> PlanCache::GetOrCompile(
    const query::BoundQuery& q, obs::Trace* trace) {
  const std::string key = PlanKey(q);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      std::shared_ptr<const ScanPlan> plan = it->second->second;
      if (plan->Matches(q)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        if (trace != nullptr) trace->plan_cache_hit = true;
        return plan;
      }
      bytes_ -= plan->ApproxBytes();
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.invalidations;
    }
  }

  // Compile outside the lock: compilation scans the fact table once and must
  // not serialize concurrent engines behind the cache mutex.
  obs::ScopedStage compile_span(trace, obs::Stage::kPlanCompile);
  DPSTARJ_ASSIGN_OR_RETURN(ScanPlan compiled, ScanPlan::Compile(q));
  auto plan = std::make_shared<const ScanPlan>(std::move(compiled));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (capacity_ == 0) return plan;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing compile landed first; keep ours only if theirs went stale.
    if (it->second->second->Matches(q)) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    bytes_ -= it->second->second->ApproxBytes();
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
  }
  lru_.emplace_front(key, plan);
  index_[key] = lru_.begin();
  bytes_ += plan->ApproxBytes();
  // Evict by entry count and by scaffold bytes; the most recent entry always
  // stays so a single oversized plan is still served (it just caches alone).
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || bytes_ > max_bytes_)) {
    bytes_ -= lru_.back().second->ApproxBytes();
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return plan;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

PlanCache::Stats PlanCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dpstarj::exec
