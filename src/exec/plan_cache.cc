#include "exec/plan_cache.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpstarj::exec {

namespace {

// Cache key: exactly the things a ScanPlan's scaffold is laid out by —
// tables in the bound query's *internal* join order (fact_dim_row is
// indexed by dim position), the FK/PK column pairing, the GROUP BY layout,
// measure terms in order, and the predicate (column, domain) sets (the
// memoized ordinal tables). Predicate *bounds* are deliberately omitted:
// every field of a plan is bound-independent, so a popular query
// re-filtered with different constants — and every noisy Predicate
// Mechanism re-execution — shares one compiled plan. Within a dimension the
// predicate signatures are sorted, so conjunction order does not split the
// cache. Two queries that differ only in aggregate kind (SUM vs AVG over
// the same measures) also share: the aggregate is applied at execution.
std::string PlanKey(const query::BoundQuery& q) {
  // Tables are identified by *object*, not name, matching ScanPlan::Matches:
  // one cache may serve engines over several catalogs (per-tenant instances
  // with identical schemas), and name-keyed entries would invalidation-
  // thrash between them.
  std::string key = Format("fact:%p", static_cast<const void*>(q.fact.get()));
  std::vector<std::string> pred_sigs;
  for (const auto& d : q.dims) {
    key += Format("|dim:%p@%d/%d", static_cast<const void*>(d.dim.get()),
                  d.fact_fk_col, d.dim_pk_col);
    pred_sigs.clear();
    pred_sigs.reserve(d.predicates.size());
    for (const auto& p : d.predicates) {
      pred_sigs.push_back(Format("%d:", p.column_index) + p.domain.ToString());
    }
    std::sort(pred_sigs.begin(), pred_sigs.end());
    for (const auto& sig : pred_sigs) {
      key += ';';
      key += sig;
    }
  }
  key += "|group:";
  for (const auto& [dim_idx, col] : q.group_key_layout) {
    key += Format("%d.%d,", dim_idx, col);
  }
  key += "|measure:";
  for (const auto& [col, coeff] : q.measure_cols) {
    key += Format("%d*%.17g,", col, coeff);
  }
  return key;
}

}  // namespace

PlanCache::PlanCache(size_t capacity, size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

Result<std::shared_ptr<const ScanPlan>> PlanCache::GetOrCompile(
    const query::BoundQuery& q, obs::Trace* trace) {
  const std::string key = PlanKey(q);
  std::shared_ptr<const ScanPlan> append_base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      std::shared_ptr<const ScanPlan> cached = it->second->second;
      if (cached->Matches(q)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        if (trace != nullptr) trace->plan_cache_hit = true;
        return cached;
      }
      // Stale. When only the fact table grew (streaming ingest), keep the
      // entry for now — its scaffold is the input of the tail extension
      // below, and a declined extension drops it then. Anything else is an
      // identity invalidation: nothing is salvageable, drop immediately.
      if (ScanPlan::IsAppendExtension(*cached, q)) {
        append_base = std::move(cached);
      } else {
        bytes_ -= cached->ApproxBytes();
        lru_.erase(it->second);
        index_.erase(it);
        ++stats_.invalidations;
        ++stats_.invalidated_identity;
      }
    }
  }

  // Extend / compile outside the lock: both scan fact data and must not
  // serialize concurrent engines behind the cache mutex.
  std::shared_ptr<const ScanPlan> plan;
  bool extended = false;
  if (append_base != nullptr) {
    obs::ScopedStage extend_span(trace, obs::Stage::kPlanExtend);
    auto ext = ScanPlan::ExtendFrom(*append_base, q);
    if (ext.ok()) {
      plan = std::make_shared<const ScanPlan>(std::move(*ext));
      extended = true;
    }
    // A declined extension (NotSupported: the tail does not splice) falls
    // through to a fresh compile; the entry is dropped below.
  }
  if (!extended) {
    obs::ScopedStage compile_span(trace, obs::Stage::kPlanCompile);
    DPSTARJ_ASSIGN_OR_RETURN(ScanPlan compiled, ScanPlan::Compile(q));
    plan = std::make_shared<const ScanPlan>(std::move(compiled));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (extended) {
    // The scaffold was reused, so this is a hit for ratio purposes — just
    // one that produced a new shared plan object.
    ++stats_.hits;
    ++stats_.extends;
    if (trace != nullptr) trace->plan_cache_hit = true;
  } else {
    ++stats_.misses;
    if (append_base != nullptr) {
      ++stats_.invalidations;
      ++stats_.invalidated_append;
    }
  }
  if (capacity_ == 0) return plan;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing insert landed first; keep ours only if theirs went stale.
    if (it->second->second->Matches(q)) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    const bool replacing_base = it->second->second == append_base;
    bytes_ -= it->second->second->ApproxBytes();
    lru_.erase(it->second);
    index_.erase(it);
    if (!replacing_base) {
      // Someone else's entry went stale underneath us (not the append base
      // we deliberately left in place) — account it like any invalidation.
      ++stats_.invalidations;
      ++stats_.invalidated_identity;
    }
  }
  lru_.emplace_front(key, plan);
  index_[key] = lru_.begin();
  bytes_ += plan->ApproxBytes();
  // Evict by entry count and by scaffold bytes; the most recent entry always
  // stays so a single oversized plan is still served (it just caches alone).
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || bytes_ > max_bytes_)) {
    bytes_ -= lru_.back().second->ApproxBytes();
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return plan;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

PlanCache::Stats PlanCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dpstarj::exec
