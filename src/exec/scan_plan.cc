#include "exec/scan_plan.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/string_util.h"
#include "exec/domain_index.h"
#include "exec/kernels/kernels.h"
#include "exec/query_result.h"

namespace dpstarj::exec {

namespace {

// Raw value of a dimension group-by cell as an exact int64 (doubles keyed by
// bit pattern, strings by dictionary code) — mirrors the fresh pipeline so
// distinct combos get distinct ordinals and identical labels merge on render.
int64_t CellKey(const storage::Column& col, int64_t row) {
  switch (col.type()) {
    case storage::ValueType::kInt64:
      return col.GetInt64(row);
    case storage::ValueType::kString:
      return col.GetStringCode(row);
    case storage::ValueType::kDouble: {
      double d = col.GetDouble(row);
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

// (Re)renders the label of every code whose run is non-empty, merging codes
// that render identically — shared by Compile and ExtendFrom so the extended
// plan's label table is the fresh compile's by construction. A group-bearing
// dimension with zero rows means no fact row can ever pass (all FKs resolve
// to its sentinel), so nothing is renderable — and its empty rep_rows must
// not be indexed.
void RenderRunLabels(ScanPlan& plan, const query::BoundQuery& q) {
  const int64_t space = static_cast<int64_t>(plan.run_offsets.size()) - 1;
  bool renderable = true;
  for (const auto& part : plan.parts) {
    if (part.dim_idx >= 0 &&
        plan.dims[static_cast<size_t>(part.dim_idx)].rep_rows.empty()) {
      renderable = false;
      break;
    }
  }
  plan.group_labels.clear();
  plan.label_of_code.assign(static_cast<size_t>(space), -1);
  std::map<std::string, std::vector<int64_t>> codes_of_label;
  std::string label;
  for (int64_t code = 0; renderable && code < space; ++code) {
    if (plan.run_offsets[static_cast<size_t>(code)] ==
        plan.run_offsets[static_cast<size_t>(code) + 1]) {
      continue;
    }
    label.clear();
    for (const auto& part : plan.parts) {
      if (!label.empty()) label += kGroupKeyDelimiter;
      uint64_t ordinal =
          plan.layout.Extract(static_cast<uint64_t>(code), part.field);
      if (part.dim_idx >= 0) {
        const PlanDim& pd = plan.dims[static_cast<size_t>(part.dim_idx)];
        const query::DimBinding& d = q.dims[static_cast<size_t>(part.dim_idx)];
        label += d.dim->column(part.col)
                     .GetValue(pd.rep_rows[ordinal])
                     .ToString();
      } else if (part.is_string) {
        label += q.fact->column(part.col).dictionary()->At(
            static_cast<int32_t>(ordinal));
      } else {
        label += std::to_string(part.base + static_cast<int64_t>(ordinal));
      }
    }
    codes_of_label[label].push_back(code);
  }
  plan.group_labels.reserve(codes_of_label.size());
  for (auto& [label_key, code_list] : codes_of_label) {
    const int32_t slot = static_cast<int32_t>(plan.group_labels.size());
    plan.group_labels.push_back(label_key);
    for (int64_t code : code_list) {
      plan.label_of_code[static_cast<size_t>(code)] = slot;
    }
  }
}

}  // namespace

Result<ScanPlan> ScanPlan::Compile(const query::BoundQuery& q) {
  ScanPlan plan;
  plan.fact_ = q.fact;
  plan.fact_rows_ = q.fact->num_rows();
  plan.measure_cols_ = q.measure_cols;
  plan.group_key_layout_ = q.group_key_layout;
  for (const auto& d : q.dims) {
    plan.dim_tables_.push_back(d.dim);
    plan.dim_rows_.push_back(d.dim->num_rows());
  }
  plan.grouped = !q.group_key_layout.empty();

  // ---- group-code layout, fact-side parts first (fresh-pipeline order).
  std::vector<std::vector<int>> dim_group_cols(q.dims.size());
  if (plan.grouped) {
    plan.parts.reserve(q.group_key_layout.size());
    for (const auto& [dim_idx, col] : q.group_key_layout) {
      PlanLabelPart part;
      part.dim_idx = dim_idx;
      part.col = col;
      if (dim_idx >= 0) {
        dim_group_cols[static_cast<size_t>(dim_idx)].push_back(col);
      } else {
        const storage::Column& c = q.fact->column(col);
        uint64_t cardinality = 1;
        if (c.type() == storage::ValueType::kDouble) {
          // Unbounded ordinal space; execution takes the scalar pipeline.
          plan.requires_scalar_ = true;
          return plan;
        }
        if (c.type() == storage::ValueType::kString) {
          part.is_string = true;
          cardinality = static_cast<uint64_t>(
              std::max<int32_t>(c.dictionary()->size(), 1));
        } else {
          const auto& data = c.int64_data();
          if (!data.empty()) {
            auto [lo, hi] = std::minmax_element(data.begin(), data.end());
            part.base = *lo;
            uint64_t range =
                static_cast<uint64_t>(*hi) - static_cast<uint64_t>(*lo);
            if (range >= (uint64_t{1} << 62)) {
              plan.requires_scalar_ = true;
              return plan;
            }
            cardinality = range + 1;
          }
        }
        part.field = plan.layout.AddField(cardinality);
      }
      plan.parts.push_back(part);
    }
  }

  // ---- per-dimension scaffolds.
  plan.dims.resize(q.dims.size());
  plan.fact_dim_row.resize(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    PlanDim& pd = plan.dims[i];
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    pd.num_rows = static_cast<int32_t>(keys.size());

    // Memoized domain-ordinal tables for the query's own predicate columns.
    for (const auto& pred : d.predicates) {
      if (pred.column_index < 0 ||
          pred.column_index >= d.dim->schema().num_fields()) {
        return Status::InvalidArgument("predicate has bad column index");
      }
      bool have = false;
      for (const auto& t : pd.ordinal_tables) {
        if (t.column_index == pred.column_index && t.domain == pred.domain) {
          have = true;
          break;
        }
      }
      if (have) continue;
      PlanDim::OrdinalTable table;
      table.column_index = pred.column_index;
      table.domain = pred.domain;
      DPSTARJ_ASSIGN_OR_RETURN(
          table.ordinals,
          ComputeDomainIndexes(d.dim->column(pred.column_index), pred.domain));
      pd.ordinal_tables.push_back(std::move(table));
    }

    // Group ordinals over *all* rows, first-occurrence order.
    const std::vector<int>& group_cols = dim_group_cols[i];
    if (!group_cols.empty()) {
      pd.group_ordinal.resize(keys.size());
      std::map<std::vector<int64_t>, int32_t> ordinal_of;
      std::vector<int64_t> combo(group_cols.size());
      for (size_t r = 0; r < keys.size(); ++r) {
        for (size_t c = 0; c < group_cols.size(); ++c) {
          combo[c] =
              CellKey(d.dim->column(group_cols[c]), static_cast<int64_t>(r));
        }
        auto [it, inserted] = ordinal_of.emplace(
            combo, static_cast<int32_t>(pd.rep_rows.size()));
        if (inserted) pd.rep_rows.push_back(static_cast<int64_t>(r));
        pd.group_ordinal[r] = it->second;
      }
      pd.field =
          plan.layout.AddField(std::max<uint64_t>(pd.rep_rows.size(), 1));
    }

    // FK→row resolution for every fact row (the expensive probe, paid once).
    std::vector<int32_t> row_payload(keys.size());
    for (size_t r = 0; r < keys.size(); ++r) {
      row_payload[r] = static_cast<int32_t>(r);
    }
    auto built = KeyIndex::Build(keys, row_payload);
    if (!built.ok()) {
      return Status::InvalidArgument(
          Format("duplicate primary key in dimension '%s': %s", d.table.c_str(),
                 built.status().message().c_str()));
    }
    const KeyIndex index = std::move(*built);
    const int64_t* fk = q.fact->column(d.fact_fk_col).int64_data().data();
    std::vector<int32_t>& rows = plan.fact_dim_row[i];
    rows.resize(static_cast<size_t>(plan.fact_rows_));
    const int32_t sentinel = pd.num_rows;
    for (int64_t r = 0; r < plan.fact_rows_; ++r) {
      int32_t dr = index.Lookup(fk[r]);
      if (dr == KeyIndex::kAbsent) {
        dr = sentinel;
        pd.has_absent_fk = true;
      }
      rows[static_cast<size_t>(r)] = dr;
    }
  }

  if (plan.grouped) {
    for (auto& part : plan.parts) {
      if (part.dim_idx >= 0) {
        part.field = plan.dims[static_cast<size_t>(part.dim_idx)].field;
      }
    }
    if (!plan.layout.Fits()) {
      // Scalar execution re-derives everything from the query; drop the
      // scaffolds already built so the cached plan is just identity fields.
      plan.requires_scalar_ = true;
      plan.dims.clear();
      plan.dims.shrink_to_fit();
      plan.fact_dim_row.clear();
      plan.fact_dim_row.shrink_to_fit();
      plan.parts.clear();
      return plan;
    }
    plan.code_space = plan.layout.CodeSpace();

    // Pre-pack the complete group code of every fact row: dimension ordinal
    // fields (via the resolved row, 0 for absent FKs — such rows never pass)
    // plus fact-side key fields.
    plan.codes.assign(static_cast<size_t>(plan.fact_rows_), 0);
    for (size_t i = 0; i < plan.dims.size(); ++i) {
      const PlanDim& pd = plan.dims[i];
      if (pd.field < 0) continue;
      const int32_t* rows = plan.fact_dim_row[i].data();
      const int32_t* ordinals = pd.group_ordinal.data();
      const int32_t sentinel = pd.num_rows;
      for (int64_t r = 0; r < plan.fact_rows_; ++r) {
        int32_t dr = rows[r];
        if (dr == sentinel) continue;
        plan.codes[static_cast<size_t>(r)] |= plan.layout.Pack(
            pd.field, static_cast<uint64_t>(ordinals[dr]));
      }
    }
    for (const auto& part : plan.parts) {
      if (part.dim_idx >= 0) continue;
      const storage::Column& c = q.fact->column(part.col);
      if (part.is_string) {
        const int32_t* code = c.code_data().data();
        for (int64_t r = 0; r < plan.fact_rows_; ++r) {
          plan.codes[static_cast<size_t>(r)] |=
              plan.layout.Pack(part.field, static_cast<uint64_t>(code[r]));
        }
      } else {
        const int64_t* i64 = c.int64_data().data();
        for (int64_t r = 0; r < plan.fact_rows_; ++r) {
          plan.codes[static_cast<size_t>(r)] |= plan.layout.Pack(
              part.field, static_cast<uint64_t>(i64[r] - part.base));
        }
      }
    }
  }

  // Per-row aggregate weights (fact measures are predicate-independent).
  if (!q.measure_cols.empty()) {
    plan.weights.assign(static_cast<size_t>(plan.fact_rows_), 0.0);
    for (const auto& [col, coeff] : q.measure_cols) {
      storage::Column::NumericView view = q.fact->column(col).numeric_view();
      const double c = coeff;
      for (int64_t r = 0; r < plan.fact_rows_; ++r) {
        plan.weights[static_cast<size_t>(r)] += c * view[r];
      }
    }
  }

  // Run-sorted layout for dense code spaces: stable counting sort of fact
  // rows by group code, so warm executions aggregate each group in one
  // sequential sweep.
  if (plan.grouped && plan.code_space.has_value() &&
      *plan.code_space <= GroupAccumulator::kDenseLimit) {
    const int64_t space = static_cast<int64_t>(*plan.code_space);
    plan.run_offsets.assign(static_cast<size_t>(space) + 1, 0);
    for (int64_t r = 0; r < plan.fact_rows_; ++r) {
      ++plan.run_offsets[static_cast<size_t>(plan.codes[static_cast<size_t>(r)]) + 1];
    }
    for (int64_t c = 0; c < space; ++c) {
      plan.run_offsets[static_cast<size_t>(c) + 1] +=
          plan.run_offsets[static_cast<size_t>(c)];
    }
    std::vector<int64_t> cursor(plan.run_offsets.begin(),
                                plan.run_offsets.end() - 1);
    plan.sorted_dim_row.resize(plan.dims.size());
    for (auto& v : plan.sorted_dim_row) {
      v.resize(static_cast<size_t>(plan.fact_rows_));
    }
    if (!plan.weights.empty()) {
      plan.sorted_weights.resize(static_cast<size_t>(plan.fact_rows_));
    }
    for (int64_t r = 0; r < plan.fact_rows_; ++r) {
      const int64_t pos = cursor[static_cast<size_t>(plan.codes[static_cast<size_t>(r)])]++;
      for (size_t i = 0; i < plan.dims.size(); ++i) {
        plan.sorted_dim_row[i][static_cast<size_t>(pos)] =
            plan.fact_dim_row[i][static_cast<size_t>(r)];
      }
      if (!plan.weights.empty()) {
        plan.sorted_weights[static_cast<size_t>(pos)] =
            plan.weights[static_cast<size_t>(r)];
      }
    }

    // Pre-render the label of every code that can ever produce a group (its
    // run is non-empty), merging codes that render identically.
    RenderRunLabels(plan, q);
    plan.has_sorted_runs = true;
  }
  return plan;
}

bool ScanPlan::IsAppendExtension(const ScanPlan& old,
                                 const query::BoundQuery& q) {
  if (q.fact != old.fact_ || q.fact->num_rows() < old.fact_rows_) return false;
  if (q.dims.size() != old.dim_tables_.size()) return false;
  for (size_t i = 0; i < q.dims.size(); ++i) {
    if (q.dims[i].dim != old.dim_tables_[i] ||
        q.dims[i].dim->num_rows() != old.dim_rows_[i]) {
      return false;
    }
  }
  return q.measure_cols == old.measure_cols_ &&
         q.group_key_layout == old.group_key_layout_;
}

Result<ScanPlan> ScanPlan::ExtendFrom(const ScanPlan& old,
                                      const query::BoundQuery& q) {
  if (!IsAppendExtension(old, q)) {
    return Status::NotSupported(
        "plan extension requires the compiled tables with only fact growth");
  }
  if (old.requires_scalar_) {
    return Status::NotSupported(
        "scalar-fallback plans carry no scaffold to extend");
  }
  const int64_t old_rows = old.fact_rows_;
  const int64_t new_rows = q.fact->num_rows();

  // Validate the tail's fact-side group keys against the compiled layout
  // BEFORE copying anything: Pack() does not mask, so an ordinal outgrowing
  // its field would corrupt neighbouring fields. A violation (a value below
  // the compiled base, or a value/dictionary code past the field's bit
  // width) means a fresh compile would lay the code out differently — the
  // caller recompiles instead.
  for (const auto& part : old.parts) {
    if (part.dim_idx >= 0) continue;
    const storage::Column& c = q.fact->column(part.col);
    const uint64_t mask = old.layout.FieldMask(part.field);
    if (part.is_string) {
      const int32_t* code = c.code_data().data();
      for (int64_t r = old_rows; r < new_rows; ++r) {
        if (static_cast<uint64_t>(code[static_cast<size_t>(r)]) > mask) {
          return Status::NotSupported(
              "fact group-by dictionary outgrew the compiled field");
        }
      }
    } else {
      const int64_t* i64 = c.int64_data().data();
      for (int64_t r = old_rows; r < new_rows; ++r) {
        const int64_t v = i64[static_cast<size_t>(r)];
        if (v < part.base || static_cast<uint64_t>(v - part.base) > mask) {
          return Status::NotSupported(
              "fact group-by value outgrew the compiled field");
        }
      }
    }
  }

  // Copy only what the extension keeps: the identity fields and the unsorted
  // scaffold it extends in place. The run-sorted arrays and the label table
  // are rebuilt below (or stay empty when `old` carries none) — copying them
  // from `old` just to overwrite them roughly doubles the cost of the very
  // recompile this function exists to avoid.
  ScanPlan plan;
  plan.fact_ = old.fact_;
  plan.fact_rows_ = new_rows;
  plan.dim_tables_ = old.dim_tables_;
  plan.dim_rows_ = old.dim_rows_;
  plan.measure_cols_ = old.measure_cols_;
  plan.group_key_layout_ = old.group_key_layout_;
  plan.requires_scalar_ = old.requires_scalar_;
  plan.grouped = old.grouped;
  plan.layout = old.layout;
  plan.parts = old.parts;
  plan.code_space = old.code_space;
  plan.dims = old.dims;
  plan.fact_dim_row = old.fact_dim_row;
  plan.codes = old.codes;
  plan.weights = old.weights;
  plan.has_sorted_runs = old.has_sorted_runs;

  // FK→row resolution for the tail only. The dimensions are unchanged, so
  // the rebuilt per-dimension index answers exactly as it did at compile
  // time (dimension indexes are small; the saved work is the fact scan).
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    PlanDim& pd = plan.dims[i];
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    std::vector<int32_t> row_payload(keys.size());
    for (size_t r = 0; r < keys.size(); ++r) {
      row_payload[r] = static_cast<int32_t>(r);
    }
    auto built = KeyIndex::Build(keys, row_payload);
    if (!built.ok()) return built.status();
    const KeyIndex index = std::move(*built);
    const int64_t* fk = q.fact->column(d.fact_fk_col).int64_data().data();
    std::vector<int32_t>& rows = plan.fact_dim_row[i];
    rows.resize(static_cast<size_t>(new_rows));
    const int32_t sentinel = pd.num_rows;
    for (int64_t r = old_rows; r < new_rows; ++r) {
      int32_t dr = index.Lookup(fk[r]);
      if (dr == KeyIndex::kAbsent) {
        dr = sentinel;
        pd.has_absent_fk = true;
      }
      rows[static_cast<size_t>(r)] = dr;
    }
  }

  // Tail group codes, packed with the compiled layout (validated above).
  if (plan.grouped) {
    plan.codes.resize(static_cast<size_t>(new_rows), 0);
    for (size_t i = 0; i < plan.dims.size(); ++i) {
      const PlanDim& pd = plan.dims[i];
      if (pd.field < 0) continue;
      const int32_t* rows = plan.fact_dim_row[i].data();
      const int32_t* ordinals = pd.group_ordinal.data();
      const int32_t sentinel = pd.num_rows;
      for (int64_t r = old_rows; r < new_rows; ++r) {
        int32_t dr = rows[r];
        if (dr == sentinel) continue;
        plan.codes[static_cast<size_t>(r)] |= plan.layout.Pack(
            pd.field, static_cast<uint64_t>(ordinals[dr]));
      }
    }
    for (const auto& part : plan.parts) {
      if (part.dim_idx >= 0) continue;
      const storage::Column& c = q.fact->column(part.col);
      if (part.is_string) {
        const int32_t* code = c.code_data().data();
        for (int64_t r = old_rows; r < new_rows; ++r) {
          plan.codes[static_cast<size_t>(r)] |=
              plan.layout.Pack(part.field, static_cast<uint64_t>(code[r]));
        }
      } else {
        const int64_t* i64 = c.int64_data().data();
        for (int64_t r = old_rows; r < new_rows; ++r) {
          plan.codes[static_cast<size_t>(r)] |= plan.layout.Pack(
              part.field, static_cast<uint64_t>(i64[r] - part.base));
        }
      }
    }
  }

  // Tail weights. Accumulation order per row matches Compile (measure
  // columns outer, rows inner), so the per-row sums associate identically.
  if (!q.measure_cols.empty()) {
    plan.weights.resize(static_cast<size_t>(new_rows), 0.0);
    for (const auto& [col, coeff] : q.measure_cols) {
      storage::Column::NumericView view = q.fact->column(col).numeric_view();
      const double c = coeff;
      for (int64_t r = old_rows; r < new_rows; ++r) {
        plan.weights[static_cast<size_t>(r)] += c * view[r];
      }
    }
  }

  // Splice the tail into the counting-sort runs: each code's new run is its
  // old run (rows already in scan order) followed by its tail rows in scan
  // order — exactly what a fresh stable counting sort over all rows
  // produces, since every tail row index is larger than every compiled row
  // index. Per-group aggregation order (and thus float association) is
  // therefore bit-identical to a from-scratch compile.
  if (plan.has_sorted_runs) {
    const int64_t space = static_cast<int64_t>(*plan.code_space);
    std::vector<int64_t> tail_count(static_cast<size_t>(space), 0);
    bool populates_empty_run = false;
    for (int64_t r = old_rows; r < new_rows; ++r) {
      const size_t code =
          static_cast<size_t>(plan.codes[static_cast<size_t>(r)]);
      if (tail_count[code]++ == 0 &&
          old.run_offsets[code] == old.run_offsets[code + 1]) {
        populates_empty_run = true;
      }
    }
    std::vector<int64_t> offsets(static_cast<size_t>(space) + 1, 0);
    for (int64_t c = 0; c < space; ++c) {
      const size_t cs = static_cast<size_t>(c);
      offsets[cs + 1] = offsets[cs] +
                        (old.run_offsets[cs + 1] - old.run_offsets[cs]) +
                        tail_count[cs];
    }
    // Stable counting sort of just the tail rows by code, so the merge below
    // emits every destination element exactly once and strictly in run
    // order: no zero-initialized full-size scratch, no random-access cursor.
    const int64_t tail_n = new_rows - old_rows;
    std::vector<int64_t> tail_begin(static_cast<size_t>(space) + 1, 0);
    for (int64_t c = 0; c < space; ++c) {
      tail_begin[static_cast<size_t>(c) + 1] =
          tail_begin[static_cast<size_t>(c)] +
          tail_count[static_cast<size_t>(c)];
    }
    std::vector<int64_t> tail_sorted(static_cast<size_t>(tail_n));
    {
      std::vector<int64_t> cursor(tail_begin.begin(), tail_begin.end() - 1);
      for (int64_t r = old_rows; r < new_rows; ++r) {
        const size_t code =
            static_cast<size_t>(plan.codes[static_cast<size_t>(r)]);
        tail_sorted[static_cast<size_t>(cursor[code]++)] = r;
      }
    }
    std::vector<std::vector<int32_t>> sorted_dim_row(plan.dims.size());
    for (auto& v : sorted_dim_row) v.reserve(static_cast<size_t>(new_rows));
    const bool weighted = !plan.weights.empty();
    std::vector<double> sorted_weights;
    if (weighted) sorted_weights.reserve(static_cast<size_t>(new_rows));
    for (int64_t c = 0; c < space; ++c) {
      const size_t cs = static_cast<size_t>(c);
      const int64_t old_begin = old.run_offsets[cs];
      const int64_t old_end = old.run_offsets[cs + 1];
      for (size_t i = 0; i < plan.dims.size(); ++i) {
        sorted_dim_row[i].insert(sorted_dim_row[i].end(),
                                 old.sorted_dim_row[i].begin() + old_begin,
                                 old.sorted_dim_row[i].begin() + old_end);
      }
      if (weighted) {
        sorted_weights.insert(sorted_weights.end(),
                              old.sorted_weights.begin() + old_begin,
                              old.sorted_weights.begin() + old_end);
      }
      for (int64_t t = tail_begin[cs]; t < tail_begin[cs + 1]; ++t) {
        const size_t r = static_cast<size_t>(tail_sorted[static_cast<size_t>(t)]);
        for (size_t i = 0; i < plan.dims.size(); ++i) {
          sorted_dim_row[i].push_back(plan.fact_dim_row[i][r]);
        }
        if (weighted) sorted_weights.push_back(plan.weights[r]);
      }
    }
    plan.run_offsets = std::move(offsets);
    plan.sorted_dim_row = std::move(sorted_dim_row);
    plan.sorted_weights = std::move(sorted_weights);

    if (populates_empty_run) {
      // Codes whose runs were empty are populated now: re-render labels
      // from the new runs with the same loop Compile uses.
      RenderRunLabels(plan, q);
    } else {
      // The set of non-empty runs is unchanged, and the label table depends
      // only on that set — the old table is exactly what a fresh render
      // over the spliced runs would produce.
      plan.group_labels = old.group_labels;
      plan.label_of_code = old.label_of_code;
    }
  }
  return plan;
}

size_t ScanPlan::ApproxBytes() const {
  size_t bytes = sizeof(ScanPlan);
  for (const auto& v : fact_dim_row) bytes += v.capacity() * sizeof(int32_t);
  for (const auto& v : sorted_dim_row) bytes += v.capacity() * sizeof(int32_t);
  bytes += codes.capacity() * sizeof(uint64_t);
  bytes += weights.capacity() * sizeof(double);
  bytes += sorted_weights.capacity() * sizeof(double);
  bytes += run_offsets.capacity() * sizeof(int64_t);
  bytes += label_of_code.capacity() * sizeof(int32_t);
  for (const auto& s : group_labels) bytes += sizeof(s) + s.capacity();
  for (const auto& d : dims) {
    bytes += d.group_ordinal.capacity() * sizeof(int32_t);
    bytes += d.rep_rows.capacity() * sizeof(int64_t);
    for (const auto& t : d.ordinal_tables) {
      bytes += t.ordinals.capacity() * sizeof(int64_t);
    }
  }
  return bytes;
}

bool ScanPlan::Matches(const query::BoundQuery& q) const {
  if (q.fact != fact_ || q.fact->num_rows() != fact_rows_) return false;
  if (q.dims.size() != dim_tables_.size()) return false;
  for (size_t i = 0; i < q.dims.size(); ++i) {
    if (q.dims[i].dim != dim_tables_[i] ||
        q.dims[i].dim->num_rows() != dim_rows_[i]) {
      return false;
    }
  }
  // The canonical key sorts dimensions and measure terms, so two equivalent
  // spellings can reach the same cache slot with different internal order;
  // execution order affects inexact float association, so require the exact
  // shape the plan was compiled for (a mismatch just recompiles).
  return q.measure_cols == measure_cols_ &&
         q.group_key_layout == group_key_layout_;
}

Result<std::vector<uint64_t>> BuildPassBitmap(
    const PlanDim& pd, const storage::Table& dim,
    const std::vector<query::BoundPredicate>& preds) {
  const int64_t rows = pd.num_rows;
  // One compare → pack pass per predicate over the memoized ordinal table,
  // ANDed directly into the bitmap words by the dispatched kernel (AVX2 when
  // the host has it). Bit `rows` (the absent-FK sentinel) and every bit past
  // it stay 0: the kernel never touches bits at or past `rows` on AND and
  // stores them as 0 on the first store.
  std::vector<uint64_t> words(static_cast<size_t>((rows + 1 + 63) / 64), 0);
  const auto& kern = kernels::ActiveKernels();
  if (preds.empty()) {
    // No predicates: every real row passes.
    const int64_t full_words = rows >> 6;
    for (int64_t wi = 0; wi < full_words; ++wi) {
      words[static_cast<size_t>(wi)] = ~uint64_t{0};
    }
    if ((rows & 63) != 0) {
      words[static_cast<size_t>(full_words)] =
          ~uint64_t{0} >> (64 - (rows & 63));
    }
    return words;
  }
  std::vector<int64_t> fresh;  // ordinals computed for non-memoized predicates
  bool first = true;
  for (const auto& pred : preds) {
    if (pred.column_index < 0 ||
        pred.column_index >= dim.schema().num_fields()) {
      return Status::InvalidArgument("predicate has bad column index");
    }
    const std::vector<int64_t>* ordinals = nullptr;
    for (const auto& t : pd.ordinal_tables) {
      if (t.column_index == pred.column_index && t.domain == pred.domain) {
        ordinals = &t.ordinals;
        break;
      }
    }
    if (ordinals == nullptr) {
      DPSTARJ_ASSIGN_OR_RETURN(
          fresh,
          ComputeDomainIndexes(dim.column(pred.column_index), pred.domain));
      ordinals = &fresh;
    }
    // lo clamped to 0 so out-of-domain cells (ordinal -1) always fail,
    // matching the fresh pipeline's `ordinal >= 0 && Matches(ordinal)`.
    const int64_t lo = std::max<int64_t>(pred.lo_index, 0);
    const int64_t hi = pred.hi_index;
    kern.range_bitmap_and(ordinals->data(), rows, lo, hi, first, words.data());
    first = false;
  }
  return words;
}

}  // namespace dpstarj::exec
