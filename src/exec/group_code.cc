#include "exec/group_code.h"

#include <algorithm>

#include "common/string_util.h"

namespace dpstarj::exec {

Result<KeyIndex> KeyIndex::Build(const std::vector<int64_t>& keys,
                                 const std::vector<int32_t>& payload) {
  KeyIndex index;
  if (keys.empty()) {
    index.dense_ = true;
    return index;
  }
  auto [min_it, max_it] = std::minmax_element(keys.begin(), keys.end());
  // Range computed in uint64 so min=INT64_MIN..max=INT64_MAX cannot overflow.
  uint64_t range =
      static_cast<uint64_t>(*max_it) - static_cast<uint64_t>(*min_it);
  // range+1 slots needed; the strict `<` inside avoids +1 overflow.
  if (DenseRangeWorthwhile(keys.size(), range)) {
    index.dense_ = true;
    index.min_key_ = *min_it;
    index.slots_.assign(range + 1, kAbsent);
    for (size_t i = 0; i < keys.size(); ++i) {
      uint64_t slot =
          static_cast<uint64_t>(keys[i]) - static_cast<uint64_t>(*min_it);
      if (index.slots_[slot] != kAbsent) {
        return Status::InvalidArgument(
            Format("duplicate key %lld", static_cast<long long>(keys[i])));
      }
      index.slots_[slot] = payload[i];
    }
    return index;
  }
  index.map_.reserve(keys.size() * 2);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = index.map_.emplace(keys[i], payload[i]);
    if (!inserted) {
      return Status::InvalidArgument(
          Format("duplicate key %lld", static_cast<long long>(keys[i])));
    }
  }
  return index;
}

namespace {

int BitsFor(uint64_t cardinality) {
  int bits = 1;
  while (bits < 64 && (uint64_t{1} << bits) < cardinality) ++bits;
  return bits;
}

}  // namespace

int GroupCodeLayout::AddField(uint64_t cardinality) {
  int bits = BitsFor(cardinality);
  shifts_.push_back(total_bits_);
  masks_.push_back(bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1);
  total_bits_ += bits;
  return static_cast<int>(shifts_.size()) - 1;
}

std::optional<uint64_t> GroupCodeLayout::CodeSpace() const {
  if (!Fits() || total_bits_ >= 63) return std::nullopt;
  return uint64_t{1} << total_bits_;
}

GroupAccumulator::GroupAccumulator(std::optional<uint64_t> code_space,
                                   uint64_t dense_limit) {
  if (code_space.has_value() &&
      *code_space <= std::min(dense_limit, kDenseLimit)) {
    dense_ = true;
    slots_.resize(*code_space);
  }
}

void GroupAccumulator::MergeFrom(const GroupAccumulator& other) {
  other.ForEach([this](uint64_t code, const GroupAgg& agg) {
    GroupAgg& mine = dense_ ? slots_[code] : map_[code];
    mine.sum += agg.sum;
    mine.rows += agg.rows;
  });
}

}  // namespace dpstarj::exec
