#include "exec/domain_index.h"

#include <unordered_map>

namespace dpstarj::exec {

Result<std::vector<int64_t>> ComputeDomainIndexes(
    const storage::Column& column, const storage::AttributeDomain& domain) {
  std::vector<int64_t> out(static_cast<size_t>(column.size()), -1);

  if (domain.is_categorical()) {
    if (column.type() != storage::ValueType::kString) {
      return Status::InvalidArgument(
          "categorical domain requires a string column");
    }
    const auto& dict = column.dictionary();
    // code → ordinal, computed once per dictionary entry.
    std::unordered_map<std::string, int64_t> cat_index;
    const auto& cats = domain.categories();
    for (size_t i = 0; i < cats.size(); ++i) {
      cat_index.emplace(cats[i], static_cast<int64_t>(i));
    }
    std::vector<int64_t> code_to_ordinal(static_cast<size_t>(dict->size()), -1);
    for (int32_t code = 0; code < dict->size(); ++code) {
      auto it = cat_index.find(dict->At(code));
      if (it != cat_index.end()) {
        code_to_ordinal[static_cast<size_t>(code)] = it->second;
      }
    }
    const auto& codes = column.code_data();
    for (size_t r = 0; r < codes.size(); ++r) {
      out[r] = code_to_ordinal[static_cast<size_t>(codes[r])];
    }
    return out;
  }

  if (column.type() != storage::ValueType::kInt64) {
    return Status::InvalidArgument("integer domain requires an int64 column");
  }
  int64_t lo = domain.int_lo();
  int64_t hi = domain.int_hi();
  const auto& data = column.int64_data();
  for (size_t r = 0; r < data.size(); ++r) {
    int64_t v = data[r];
    out[r] = (v >= lo && v <= hi) ? v - lo : -1;
  }
  return out;
}

}  // namespace dpstarj::exec
