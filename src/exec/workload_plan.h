// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// WorkloadPlan — shared-scan batch execution of a *set* of warm star-join
// queries over the same fact table, with cross-query predicate
// common-subexpression elimination (CSE).
//
// The Predicate Mechanism answers workload queries one at a time, so a
// 16-query SSB workload pays 16 full fact sweeps and rebuilds the same
// dimension bitmaps repeatedly even when every query filters the same
// `Supplier.region` range. This compiler amortizes both costs:
//
//   1. Every item's per-dimension effective predicates (its own, or the DP
//      layer's perturbed overrides) are canonicalized — sorted by
//      (column, kind, bounds) — and interned into a DAG of *predicate
//      nodes*. Two queries filtering a dimension identically share one node,
//      and each node's pass bitmap is built exactly once per batch
//      (exec/scan_plan.h BuildPassBitmap). A dimension joined without
//      predicates interns the empty list: one all-ones "join presence"
//      bitmap per dimension slot.
//   2. Dimension *slots* — distinct (dimension table, fact FK column) pairs —
//      share one FK→dimension-row gather array from the first owning item's
//      ScanPlan, so N queries joining Date probe its resolved rows once per
//      fact row, not N times.
//   3. The fact table is swept **once**: each morsel gathers every slot's
//      dimension row, evaluates every node's bit, and accumulates into every
//      item's packed-group-code accumulator simultaneously. Per-worker
//      partials merge in worker order, exactly like the single-query morsel
//      path, so exact aggregates (COUNT, integer-valued SUM) are
//      bit-identical to one-at-a-time warm execution at any thread count.
//
// Design exemplar: IronBee's Predicate system (rule predicates as expression
// DAGs with cross-rule subexpression merging at configuration time); see
// ROADMAP "Workload compiler".
//
// DP semantics: the compiler runs strictly *after* predicate perturbation
// and only changes the execution strategy, never the noisy predicate values
// — DP-starJ's guarantees are post-processing-closed, so batching N queries
// into one scan yields answers distributed identically to N separate scans.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "exec/query_result.h"
#include "exec/scan_plan.h"
#include "exec/star_join_executor.h"
#include "obs/trace.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief One query of a batch: the bound query, the effective predicates
/// (nullptr = the query's own), and its warm ScanPlan scaffold.
struct WorkloadItem {
  const query::BoundQuery* query = nullptr;
  /// Per-dimension predicate replacements, aligned with query->dims; nullptr
  /// or an unengaged entry keeps the dimension's own predicates. The pointed-
  /// to overrides must outlive the WorkloadPlan (predicate values are copied
  /// at Compile, but callers conventionally keep them alive anyway).
  const PredicateOverrides* overrides = nullptr;
  /// Scaffold from ScanPlan::Compile / PlanCache::GetOrCompile. Must match
  /// the query's tables and must not require the scalar pipeline.
  std::shared_ptr<const ScanPlan> plan;
};

/// \brief What the batch compiler actually shared — the CSE receipts.
struct WorkloadExecStats {
  int64_t queries = 0;           ///< items executed through the batch path
  int64_t scans = 0;             ///< shared fact sweeps (one per fact table)
  int64_t predicate_refs = 0;    ///< (item, dimension) predicate references
  int64_t predicate_nodes = 0;   ///< deduped bitmap builds (≤ predicate_refs)
  int64_t shared_dim_slots = 0;  ///< distinct (dim table, FK column) slots
};

/// \brief Compiled shared-scan plan for a batch of warm queries.
///
/// Immutable after Compile; Execute is const and safe to call repeatedly or
/// concurrently (each call owns its bitmaps and accumulators).
class WorkloadPlan {
 public:
  /// \brief Compiles a batch. Items may span multiple fact tables (each fact
  /// table gets its own shared sweep); every item needs a matching,
  /// non-scalar ScanPlan — callers route scalar-pipeline queries through the
  /// single-query path instead.
  static Result<WorkloadPlan> Compile(std::vector<WorkloadItem> items);

  /// \brief Builds each predicate node's bitmap once (obs::Stage::
  /// kBitmapRebuild), then sweeps each fact table once accumulating all
  /// items simultaneously (obs::Stage::kScan). Returns one QueryResult per
  /// item, in item order.
  ///
  /// Determinism matches the single-query morsel path: per-worker partials
  /// merge in worker order, so exact aggregates are bit-identical to
  /// one-at-a-time warm execution at every `options.exec_threads`.
  /// `options.strict_integrity` is refused — strict callers take the
  /// single-query path, which reports the exact violating row.
  Result<std::vector<QueryResult>> Execute(const ExecutorOptions& options,
                                           obs::Trace* trace = nullptr) const;

  const WorkloadExecStats& stats() const { return stats_; }

 private:
  /// One shared FK→dimension-row gather: a distinct (dimension table,
  /// fact FK column) pair within one fact table's sweep.
  struct Slot {
    const storage::Table* dim_table = nullptr;
    int fact_fk_col = -1;
    size_t item_idx = 0;  ///< item whose plan supplies the gather array
    size_t dim_idx = 0;   ///< dimension index within that item's plan
    int32_t sentinel = 0;  ///< absent-FK row id (= dimension row count)
  };

  /// One deduped predicate bitmap: a slot plus a canonicalized effective
  /// predicate list (empty = join presence, all rows pass).
  struct Node {
    size_t slot = 0;      ///< group-local slot index
    size_t item_idx = 0;  ///< first-occurrence item — its PlanDim memoizes
    size_t dim_idx = 0;   ///< the ordinal tables this node evaluates against
    std::vector<query::BoundPredicate> preds;
  };

  /// Per-item wiring inside its scan group.
  struct ItemWiring {
    size_t item_idx = 0;           ///< index into items_
    std::vector<uint32_t> nodes;   ///< group-local node per query dimension
  };

  /// All items sharing one fact table: one morsel sweep.
  struct ScanGroup {
    const storage::Table* fact = nullptr;
    int64_t fact_rows = 0;
    std::vector<Slot> slots;
    std::vector<Node> nodes;
    std::vector<ItemWiring> wiring;
  };

  std::vector<WorkloadItem> items_;
  std::vector<ScanGroup> groups_;
  WorkloadExecStats stats_;
};

}  // namespace dpstarj::exec
