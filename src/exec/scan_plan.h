// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// ScanPlan — the reusable, predicate-independent scaffold of a bound
// star-join query. DP-starJ's Predicate Mechanism answers every noisy run by
// re-executing the *same* bound query with perturbed predicate bounds only,
// so everything that does not depend on predicate values is compiled once:
//
//   * FK→dimension-row resolution: one int32 per (fact row, dimension),
//     with referential misses mapped to a per-dimension sentinel row whose
//     predicate bit is permanently 0 — the hash/offset-table probe of the
//     fresh pipeline disappears entirely from the per-execution scan;
//   * the GROUP BY code layout, the per-dimension group ordinals (assigned
//     over *all* dimension rows, so they never shift when predicates move),
//     and the fully pre-packed uint64 group code of every fact row;
//   * the per-row aggregate weight (measure terms are fact columns);
//   * memoized domain-ordinal tables for the query's predicate columns, the
//     inputs of per-execution predicate evaluation.
//
// What remains per execution is the cheap part: one *predicate bitmap* per
// dimension — bit r = "dimension row r passes every effective predicate" —
// built from the ordinal tables with branchless, autovectorizable compares
// and packed into uint64 words, then a fact scan that is just gathers into
// those bitmaps plus the pre-packed code/weight arrays.
//
// Plans are immutable after Compile and safe to share across threads; see
// exec/plan_cache.h for the canonical-keyed cache with invalidation.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "exec/group_code.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief One dimension's predicate-independent scaffold.
struct PlanDim {
  /// Dimension row count. Row id `num_rows` is the absent-FK sentinel: it has
  /// no ordinal and its bit in every predicate bitmap is 0.
  int32_t num_rows = 0;

  /// True when at least one fact row's FK missed this dimension (so some
  /// entry of fact_dim_row is the sentinel). When false AND an execution's
  /// rebuilt bitmap passes every real row — a fully-open predicate, common
  /// under PM perturbation of wide ranges — the dimension cannot reject any
  /// fact row and the sweep drops it entirely (see the executor's plan path).
  bool has_absent_fk = false;

  /// row → dense group ordinal over the dimension's GROUP BY columns (empty
  /// when the dimension contributes no group keys). Ordinals are assigned in
  /// first-occurrence row order over all rows — predicate-independent.
  std::vector<int32_t> group_ordinal;
  /// ordinal → representative dimension row (for label rendering).
  std::vector<int64_t> rep_rows;
  /// GroupCodeLayout field of this dimension, -1 when it has no group cols.
  int field = -1;

  /// Memoized row → domain-ordinal table for one predicate column.
  struct OrdinalTable {
    int column_index = -1;
    storage::AttributeDomain domain;
    std::vector<int64_t> ordinals;  ///< -1 = value outside the domain
  };
  /// One table per distinct (column, domain) among the query's own
  /// predicates. Overrides that keep column and domain (the Predicate
  /// Mechanism always does) evaluate against these; others compute fresh.
  std::vector<OrdinalTable> ordinal_tables;
};

/// \brief One rendered group-key part, in declared GROUP BY order.
struct PlanLabelPart {
  int dim_idx = -1;  ///< -1 = fact column
  int col = -1;
  int field = -1;          ///< layout field
  bool is_string = false;  ///< fact parts: dictionary-coded column
  int64_t base = 0;        ///< fact int64 parts: ordinal = value - base
};

/// \brief Compiled scaffold of one bound star-join query.
class ScanPlan {
 public:
  /// \brief Compiles `q`. Costs about one fresh execution (one fact pass plus
  /// the per-dimension index builds) and is amortized by every later run.
  static Result<ScanPlan> Compile(const query::BoundQuery& q);

  /// \brief True when the plan was compiled against exactly the tables (by
  /// identity *and* row count — tables are append-only) and the aggregate
  /// shape of `q`. A false return means the plan is stale and must be
  /// recompiled; executing a stale plan is refused.
  bool Matches(const query::BoundQuery& q) const;

  /// \brief True when `q` binds the same tables and aggregate shape as `old`
  /// and only the fact table has grown — the precondition for ExtendFrom.
  /// The plan cache uses this to classify a stale hit as append vs identity.
  static bool IsAppendExtension(const ScanPlan& old, const query::BoundQuery& q);

  /// \brief Compiles a plan for `q` by extending `old` over the fact table's
  /// appended tail only: FK resolution, group-code packing, and weights run
  /// over rows [old.fact_rows(), q.fact->num_rows()), and the tail is spliced
  /// into the counting-sort runs. Because the sort is stable and every tail
  /// row index exceeds every compiled row index, the result is bit-identical
  /// to a fresh Compile on the grown table (tests/ingest_test.cc asserts
  /// this over randomized append schedules). Returns NotSupported when the
  /// tail cannot be spliced — the plan was scalar-fallback, or a fact-side
  /// group key outgrew its packed bit field — in which case the caller falls
  /// back to a full Compile.
  static Result<ScanPlan> ExtendFrom(const ScanPlan& old,
                                     const query::BoundQuery& q);

  /// The GROUP BY key set could not be packed into a 64-bit code; execution
  /// must take the scalar pipeline (no scaffold is built in this case).
  bool requires_scalar() const { return requires_scalar_; }

  /// Approximate heap footprint of the scaffold arrays (for the cache's
  /// byte budget; labels and small per-dimension tables included).
  size_t ApproxBytes() const;

  // --- scaffold data, read by the executor's plan path -------------------
  bool grouped = false;
  GroupCodeLayout layout;
  std::vector<PlanLabelPart> parts;
  std::optional<uint64_t> code_space;
  std::vector<PlanDim> dims;

  /// Per dimension: fact row → dimension row, absent FKs → dims[i].num_rows.
  std::vector<std::vector<int32_t>> fact_dim_row;
  /// Pre-packed group code per fact row (empty when !grouped).
  std::vector<uint64_t> codes;
  /// Per-row aggregate weight (empty = COUNT, weight 1.0).
  std::vector<double> weights;

  /// Run-sorted scaffold, built for grouped queries whose code space fits the
  /// dense accumulator: fact rows stably partitioned by group code (counting
  /// sort, so rows stay in scan order within a run). The warm scan then
  /// sweeps each code's run once and emits one aggregate per group —
  /// sequential accumulator writes instead of a random read-modify-write per
  /// fact row, and per-group sums that associate in row order (the
  /// single-thread fresh-build order) at *any* worker count.
  bool has_sorted_runs = false;
  /// code → begin of its run in the sorted arrays (size code_space + 1).
  std::vector<int64_t> run_offsets;
  /// Per dimension: fact_dim_row permuted into run order.
  std::vector<std::vector<int32_t>> sorted_dim_row;
  /// weights permuted into run order (empty = COUNT).
  std::vector<double> sorted_weights;

  /// Labels too are predicate-independent, so the run-sorted scaffold
  /// pre-renders them: the sorted unique label of every code whose run is
  /// non-empty, and code → label slot (-1 for empty runs). Warm executions
  /// never touch a string — they aggregate per label slot and emit the
  /// result map in pre-sorted order. Distinct codes may share a label (two
  /// doubles rendering identically); they merge into one slot, matching the
  /// fresh pipeline's merge-by-label semantics.
  std::vector<std::string> group_labels;
  std::vector<int32_t> label_of_code;

  int64_t fact_rows() const { return fact_rows_; }

 private:
  bool requires_scalar_ = false;

  // Identity for Matches(): the exact tables and aggregate shape compiled.
  std::shared_ptr<storage::Table> fact_;
  int64_t fact_rows_ = 0;
  std::vector<std::shared_ptr<storage::Table>> dim_tables_;
  std::vector<int64_t> dim_rows_;
  std::vector<std::pair<int, double>> measure_cols_;
  std::vector<std::pair<int, int>> group_key_layout_;
};

/// \brief Builds one dimension's per-execution predicate bitmap: bit r = row
/// r passes every predicate in `preds`, packed into uint64 words covering
/// rows [0, num_rows] with the sentinel bit (num_rows) always 0. Evaluation
/// is branchless over the plan's memoized ordinal tables (computing a fresh
/// table when a predicate's column/domain is not memoized).
Result<std::vector<uint64_t>> BuildPassBitmap(
    const PlanDim& pd, const storage::Table& dim,
    const std::vector<query::BoundPredicate>& preds);

}  // namespace dpstarj::exec
