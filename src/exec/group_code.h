// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Building blocks of the vectorized star-join scan:
//
//   KeyIndex        dimension primary key → int32 payload. When the key space
//                   is reasonably dense (range ≤ ~4× the row count) the probe
//                   is a single array index into an offset table; sparse key
//                   spaces fall back to a hash map. The payload is caller-
//                   defined (the executor stores a pass/fail verdict fused
//                   with a group ordinal; the contribution index stores the
//                   dimension row).
//
//   GroupCodeLayout bit-packing of per-dimension group ordinals into one
//                   uint64 group code per fact row, so GROUP BY aggregation
//                   needs no per-row string materialization. Labels are
//                   rendered once per *group* at the end of the scan.
//
//   GroupAccumulator group code → (sum, row count), backed by a plain vector
//                   when the code space is small and a hash map otherwise.
//                   Partials from parallel workers merge deterministically.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace dpstarj::exec {

/// \brief Dense-or-hashed lookup from int64 keys to int32 payloads.
class KeyIndex {
 public:
  /// Sentinel returned by Lookup for keys not present in the index. Payloads
  /// must not use this value.
  static constexpr int32_t kAbsent = INT32_MIN;

  /// \brief Builds the index over `keys` (payload[i] belongs to keys[i]).
  /// Duplicate keys are an error (dimension primary keys are unique). The
  /// dense offset-table representation is used when the key range is at most
  /// `kDensityFactor`× the row count (plus slack for tiny tables).
  static Result<KeyIndex> Build(const std::vector<int64_t>& keys,
                                const std::vector<int32_t>& payload);

  /// \brief The dense-vs-hash decision shared by every int64 key-space
  /// lookup in the engine (this index and the cube's axis LUTs): a dense
  /// offset table pays off while the key range is at most kDensityFactor ×
  /// the key count, plus slack so tiny tables always go dense.
  static bool DenseRangeWorthwhile(size_t num_keys, uint64_t range) {
    return range <
           static_cast<uint64_t>(num_keys) * kDensityFactor + kDensitySlack;
  }

  /// Payload of `key`, or kAbsent.
  int32_t Lookup(int64_t key) const {
    if (dense_) {
      uint64_t slot = static_cast<uint64_t>(key) - static_cast<uint64_t>(min_key_);
      return slot < slots_.size() ? slots_[slot] : kAbsent;
    }
    auto it = map_.find(key);
    return it == map_.end() ? kAbsent : it->second;
  }

  bool dense() const { return dense_; }

 private:
  static constexpr int64_t kDensityFactor = 4;
  static constexpr int64_t kDensitySlack = 1024;

  bool dense_ = false;
  int64_t min_key_ = 0;
  std::vector<int32_t> slots_;
  std::unordered_map<int64_t, int32_t> map_;
};

/// \brief Bit layout of packed group codes: field f occupies
/// ceil(log2(cardinality_f)) bits (at least 1).
class GroupCodeLayout {
 public:
  /// Appends a field of `cardinality` distinct ordinals; returns its index.
  int AddField(uint64_t cardinality);

  /// True while all fields fit in 64 bits; Pack/Extract require Fits().
  bool Fits() const { return total_bits_ <= 64; }

  int num_fields() const { return static_cast<int>(shifts_.size()); }

  /// The ordinal contribution of field f, to be OR-ed into the code.
  uint64_t Pack(int f, uint64_t ordinal) const {
    return ordinal << shifts_[static_cast<size_t>(f)];
  }

  /// Recovers field f's ordinal from a packed code.
  uint64_t Extract(uint64_t code, int f) const {
    return (code >> shifts_[static_cast<size_t>(f)]) &
           masks_[static_cast<size_t>(f)];
  }

  /// Largest ordinal field f can represent. Pack() does not mask, so callers
  /// packing ordinals derived from *new* data (incremental plan extension)
  /// must range-check against this before OR-ing into a code.
  uint64_t FieldMask(int f) const { return masks_[static_cast<size_t>(f)]; }

  /// Total number of representable codes (product of rounded-up field
  /// sizes), or nullopt when it does not fit in 63 bits.
  std::optional<uint64_t> CodeSpace() const;

 private:
  std::vector<int> shifts_;
  std::vector<uint64_t> masks_;
  int total_bits_ = 0;
};

/// \brief One group's running aggregate.
struct GroupAgg {
  double sum = 0.0;
  int64_t rows = 0;
};

/// \brief Accumulates (sum, rows) per packed group code.
class GroupAccumulator {
 public:
  /// Hard cap on flat-vector slots (16 MB of GroupAgg at this size).
  static constexpr uint64_t kDenseLimit = 1u << 20;

  /// `code_space` from GroupCodeLayout::CodeSpace(); nullopt forces hashing.
  /// `dense_limit` further bounds the flat-vector backend — callers pass a
  /// value proportional to the rows they will scan, so a worker never
  /// zero-initializes slots vastly outnumbering the codes it can touch.
  explicit GroupAccumulator(std::optional<uint64_t> code_space,
                            uint64_t dense_limit = kDenseLimit);

  void Add(uint64_t code, double w) {
    GroupAgg& agg = dense_ ? slots_[code] : map_[code];
    agg.sum += w;
    agg.rows += 1;
  }

  /// \brief Folds `other` into this accumulator. Call in worker-index order:
  /// group sums are then associated identically on every run with the same
  /// worker count.
  void MergeFrom(const GroupAccumulator& other);

  /// Visits every non-empty group. Dense backends visit in code order;
  /// hashed backends in unspecified (but per-process deterministic) order —
  /// callers sort by rendered label downstream.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (dense_) {
      for (uint64_t c = 0; c < slots_.size(); ++c) {
        if (slots_[c].rows > 0) fn(c, slots_[c]);
      }
    } else {
      for (const auto& [c, agg] : map_) fn(c, agg);
    }
  }

  bool dense() const { return dense_; }

 private:
  bool dense_ = false;
  std::vector<GroupAgg> slots_;
  std::unordered_map<uint64_t, GroupAgg> map_;
};

}  // namespace dpstarj::exec
