#include "exec/data_cube.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"
#include "exec/group_code.h"
#include "exec/parallel.h"

namespace dpstarj::exec {

namespace {

/// Fused FK → cube contribution lookup for one joined dimension: axes map the
/// key straight to its domain ordinal (-1 = drop: key absent or value outside
/// the domain), non-axis dimensions map present keys to 0 (presence check
/// only, stride 0). KeyIndex itself is not reusable here — ordinals are
/// int64 (cube axes can exceed int32) — but the dense-vs-hash decision is
/// shared via KeyIndex::DenseRangeWorthwhile.
struct AxisLut {
  bool dense = false;
  int64_t min_key = 0;
  std::vector<int64_t> slots;  ///< slot → ordinal or -1
  std::unordered_map<int64_t, int64_t> map;

  static AxisLut Build(const std::vector<int64_t>& keys,
                       const std::vector<int64_t>* ordinals) {
    AxisLut lut;
    if (keys.empty()) {
      lut.dense = true;
      return lut;
    }
    auto [min_it, max_it] = std::minmax_element(keys.begin(), keys.end());
    uint64_t range =
        static_cast<uint64_t>(*max_it) - static_cast<uint64_t>(*min_it);
    if (KeyIndex::DenseRangeWorthwhile(keys.size(), range)) {
      lut.dense = true;
      lut.min_key = *min_it;
      lut.slots.assign(range + 1, -1);
      for (size_t i = 0; i < keys.size(); ++i) {
        uint64_t slot =
            static_cast<uint64_t>(keys[i]) - static_cast<uint64_t>(*min_it);
        lut.slots[slot] = ordinals != nullptr ? (*ordinals)[i] : 0;
      }
      return lut;
    }
    lut.map.reserve(keys.size() * 2);
    for (size_t i = 0; i < keys.size(); ++i) {
      lut.map.emplace(keys[i], ordinals != nullptr ? (*ordinals)[i] : 0);
    }
    return lut;
  }

  int64_t Lookup(int64_t key) const {
    if (dense) {
      uint64_t slot =
          static_cast<uint64_t>(key) - static_cast<uint64_t>(min_key);
      return slot < slots.size() ? slots[slot] : -1;
    }
    auto it = map.find(key);
    return it == map.end() ? -1 : it->second;
  }
};

/// One probe of the build scan: a lookup table, the FK column it reads, and
/// the stride its ordinal contributes to the cell offset (0 for non-axis
/// presence checks).
struct CubeProbe {
  AxisLut lut;
  const int64_t* fk = nullptr;
  int64_t stride = 0;
};

// Per-worker cells above this are not worth the partial-vector memory; the
// scan stays sequential instead.
constexpr int64_t kParallelCellLimit = int64_t{1} << 22;

}  // namespace

Result<DataCube> DataCube::Build(
    const query::BoundQuery& q,
    const std::vector<query::DimensionAttribute>& attributes,
    const CubeOptions& options) {
  if (attributes.empty()) {
    return Status::InvalidArgument("cube needs at least one attribute");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("cube does not support GROUP BY queries");
  }
  if (q.query.aggregate == query::AggregateKind::kAvg) {
    return Status::NotSupported(
        "cube cells are additive; AVG needs the executor path");
  }

  DataCube cube;
  int64_t cells = 1;
  // Per-axis ordinal columns (dim row → domain ordinal or -1), axis FKs.
  std::vector<std::vector<int64_t>> axis_ordinals(attributes.size());
  std::vector<int> axis_fk_col(attributes.size(), -1);
  std::vector<const query::DimBinding*> axis_owner(attributes.size(), nullptr);

  for (size_t a = 0; a < attributes.size(); ++a) {
    const auto& attr = attributes[a];
    const query::DimBinding* owner = nullptr;
    for (const auto& d : q.dims) {
      if (d.table == attr.table) {
        owner = &d;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::InvalidArgument(
          Format("cube attribute %s.%s: table not joined by the query",
                 attr.table.c_str(), attr.column.c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(int col, owner->dim->schema().FieldIndex(attr.column));
    DPSTARJ_ASSIGN_OR_RETURN(
        axis_ordinals[a],
        ComputeDomainIndexes(owner->dim->column(col), attr.domain));
    axis_fk_col[a] = owner->fact_fk_col;
    axis_owner[a] = owner;

    CubeAxis axis;
    axis.table = attr.table;
    axis.column = attr.column;
    axis.domain = attr.domain;
    cube.axes_.push_back(std::move(axis));
    cube.sizes_.push_back(attr.domain.size());
    if (cells > (int64_t{1} << 40) / attr.domain.size()) {
      return Status::InvalidArgument("cube too large");
    }
    cells *= attr.domain.size();
  }

  cube.strides_.assign(cube.sizes_.size(), 1);
  for (int i = static_cast<int>(cube.sizes_.size()) - 2; i >= 0; --i) {
    cube.strides_[static_cast<size_t>(i)] =
        cube.strides_[static_cast<size_t>(i + 1)] * cube.sizes_[static_cast<size_t>(i + 1)];
  }
  cube.values_.assign(static_cast<size_t>(cells), 0.0);

  if (options.force_legacy) {
    // ------------------------------------------------------------------
    // Legacy row-at-a-time build: one hash probe per axis per fact row.
    // Kept as the benchmark baseline for the fused dense-LUT scan below.
    // ------------------------------------------------------------------
    std::vector<std::unordered_map<int64_t, int64_t>> key_to_ordinal(
        attributes.size());
    for (size_t a = 0; a < attributes.size(); ++a) {
      const auto& keys =
          axis_owner[a]->dim->column(axis_owner[a]->dim_pk_col).int64_data();
      auto& map = key_to_ordinal[a];
      map.reserve(keys.size() * 2);
      for (size_t r = 0; r < keys.size(); ++r) {
        map.emplace(keys[r], axis_ordinals[a][r]);
      }
    }
    // Joined dimensions that are NOT cube axes: rows whose FK misses such a
    // dimension do not join and must be dropped.
    std::vector<std::unordered_map<int64_t, bool>> other_dims;
    std::vector<int> other_fk_col;
    for (const auto& d : q.dims) {
      bool is_axis = false;
      for (const auto& attr : attributes) {
        if (attr.table == d.table) {
          is_axis = true;
          break;
        }
      }
      if (is_axis) continue;
      std::unordered_map<int64_t, bool> keys;
      const auto& pk = d.dim->column(d.dim_pk_col).int64_data();
      keys.reserve(pk.size() * 2);
      for (int64_t k : pk) keys.emplace(k, true);
      other_dims.push_back(std::move(keys));
      other_fk_col.push_back(d.fact_fk_col);
    }

    for (int64_t row = 0; row < q.fact->num_rows(); ++row) {
      int64_t offset = 0;
      bool ok = true;
      for (size_t a = 0; a < attributes.size(); ++a) {
        int64_t key =
            q.fact->column(axis_fk_col[a]).int64_data()[static_cast<size_t>(row)];
        auto it = key_to_ordinal[a].find(key);
        if (it == key_to_ordinal[a].end() || it->second < 0) {
          ok = false;
          break;
        }
        offset += it->second * cube.strides_[a];
      }
      if (ok) {
        for (size_t i = 0; i < other_dims.size(); ++i) {
          int64_t key = q.fact->column(other_fk_col[i])
                            .int64_data()[static_cast<size_t>(row)];
          if (other_dims[i].find(key) == other_dims[i].end()) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) {
        ++cube.dropped_rows_;
        continue;
      }
      double w = 1.0;
      if (!q.measure_cols.empty()) {
        w = 0.0;
        for (const auto& [col, coeff] : q.measure_cols) {
          w += coeff * q.fact->column(col).GetNumeric(row);
        }
      }
      cube.values_[static_cast<size_t>(offset)] += w;
      cube.total_ += w;
    }
    return cube;
  }

  // --------------------------------------------------------------------
  // Vectorized build: per-dimension fused FK→ordinal LUTs (one load per
  // probe on dense key spaces), morsel-parallel fact scan with worker
  // partials merged deterministically in worker order.
  // --------------------------------------------------------------------
  std::vector<CubeProbe> probes;
  probes.reserve(q.dims.size());
  for (size_t a = 0; a < attributes.size(); ++a) {
    CubeProbe probe;
    const auto& keys =
        axis_owner[a]->dim->column(axis_owner[a]->dim_pk_col).int64_data();
    probe.lut = AxisLut::Build(keys, &axis_ordinals[a]);
    probe.fk = q.fact->column(axis_fk_col[a]).int64_data().data();
    probe.stride = cube.strides_[a];
    probes.push_back(std::move(probe));
  }
  for (const auto& d : q.dims) {
    bool is_axis = false;
    for (const auto& attr : attributes) {
      if (attr.table == d.table) {
        is_axis = true;
        break;
      }
    }
    if (is_axis) continue;
    CubeProbe probe;
    const auto& pk = d.dim->column(d.dim_pk_col).int64_data();
    probe.lut = AxisLut::Build(pk, nullptr);
    probe.fk = q.fact->column(d.fact_fk_col).int64_data().data();
    probe.stride = 0;
    probes.push_back(std::move(probe));
  }

  std::vector<std::pair<storage::Column::NumericView, double>> measures;
  measures.reserve(q.measure_cols.size());
  for (const auto& [col, coeff] : q.measure_cols) {
    measures.emplace_back(q.fact->column(col).numeric_view(), coeff);
  }

  const int64_t fact_rows = q.fact->num_rows();
  int num_workers =
      MorselPool::ResolveWorkers(options.threads, options.morsel_size, fact_rows);
  if (cells > kParallelCellLimit) num_workers = 1;

  struct CubePartial {
    std::vector<double> values;
    double total = 0.0;
    int64_t dropped = 0;
  };
  // total/dropped are bumped per row, so each worker's partial gets its own
  // cache line (CacheAligned, exec/parallel.h).
  std::vector<CacheAligned<CubePartial>> partials(
      static_cast<size_t>(num_workers));
  // Worker 0 (the calling thread) accumulates directly into the cube so the
  // common sequential case allocates nothing extra.
  for (size_t wkr = 1; wkr < partials.size(); ++wkr) {
    partials[wkr].value.values.assign(static_cast<size_t>(cells), 0.0);
  }

  const size_t num_probes = probes.size();
  auto scan = [&](int worker, int64_t begin, int64_t end) {
    CubePartial& p = partials[static_cast<size_t>(worker)].value;
    double* values = worker == 0 ? cube.values_.data() : p.values.data();
    for (int64_t row = begin; row < end; ++row) {
      int64_t offset = 0;
      bool drop = false;
      for (size_t a = 0; a < num_probes; ++a) {
        const CubeProbe& probe = probes[a];
        int64_t ordinal = probe.lut.Lookup(probe.fk[row]);
        drop |= ordinal < 0;
        offset += ordinal * probe.stride;  // poisoned when drop; unused then
      }
      if (drop) {
        ++p.dropped;
        continue;
      }
      double w = 1.0;
      if (!measures.empty()) {
        w = 0.0;
        for (const auto& [view, coeff] : measures) w += coeff * view[row];
      }
      values[static_cast<size_t>(offset)] += w;
      p.total += w;
    }
  };
  MorselPool::Shared().Run(num_workers, fact_rows, options.morsel_size, scan);

  // Deterministic merge, in worker order (worker 0 is already in place).
  cube.total_ = partials[0].value.total;
  cube.dropped_rows_ = partials[0].value.dropped;
  for (size_t wkr = 1; wkr < partials.size(); ++wkr) {
    const CubePartial& p = partials[wkr].value;
    for (int64_t c = 0; c < cells; ++c) {
      cube.values_[static_cast<size_t>(c)] += p.values[static_cast<size_t>(c)];
    }
    cube.total_ += p.total;
    cube.dropped_rows_ += p.dropped;
  }
  return cube;
}

Status DataCube::AppendRows(const query::BoundQuery& q, int64_t first_row) {
  const int64_t fact_rows = q.fact->num_rows();
  if (first_row < 0 || first_row > fact_rows) {
    return Status::InvalidArgument("cube append: first_row out of range");
  }

  // Rebuild the probes from the query exactly as Build does: axis probes in
  // axis order (revalidating that each axis table is still joined and its
  // domain still fits), then presence probes for the remaining joined
  // dimensions in bound order.
  std::vector<CubeProbe> probes;
  probes.reserve(q.dims.size());
  for (size_t a = 0; a < axes_.size(); ++a) {
    const CubeAxis& axis = axes_[a];
    const query::DimBinding* owner = nullptr;
    for (const auto& d : q.dims) {
      if (d.table == axis.table) {
        owner = &d;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::InvalidArgument(
          Format("cube append: axis table %s not joined by the query",
                 axis.table.c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(int col,
                             owner->dim->schema().FieldIndex(axis.column));
    DPSTARJ_ASSIGN_OR_RETURN(
        std::vector<int64_t> ordinals,
        ComputeDomainIndexes(owner->dim->column(col), axis.domain));
    CubeProbe probe;
    const auto& keys = owner->dim->column(owner->dim_pk_col).int64_data();
    probe.lut = AxisLut::Build(keys, &ordinals);
    probe.fk = q.fact->column(owner->fact_fk_col).int64_data().data();
    probe.stride = strides_[a];
    probes.push_back(std::move(probe));
  }
  for (const auto& d : q.dims) {
    bool is_axis = false;
    for (const auto& axis : axes_) {
      if (axis.table == d.table) {
        is_axis = true;
        break;
      }
    }
    if (is_axis) continue;
    CubeProbe probe;
    const auto& pk = d.dim->column(d.dim_pk_col).int64_data();
    probe.lut = AxisLut::Build(pk, nullptr);
    probe.fk = q.fact->column(d.fact_fk_col).int64_data().data();
    probe.stride = 0;
    probes.push_back(std::move(probe));
  }

  std::vector<std::pair<storage::Column::NumericView, double>> measures;
  measures.reserve(q.measure_cols.size());
  for (const auto& [col, coeff] : q.measure_cols) {
    measures.emplace_back(q.fact->column(col).numeric_view(), coeff);
  }

  // Sequential tail scan in row order: the same contribution order a fresh
  // sequential Build would use for these rows.
  const size_t num_probes = probes.size();
  for (int64_t row = first_row; row < fact_rows; ++row) {
    int64_t offset = 0;
    bool drop = false;
    for (size_t a = 0; a < num_probes; ++a) {
      const CubeProbe& probe = probes[a];
      int64_t ordinal = probe.lut.Lookup(probe.fk[row]);
      drop |= ordinal < 0;
      offset += ordinal * probe.stride;  // poisoned when drop; unused then
    }
    if (drop) {
      ++dropped_rows_;
      continue;
    }
    double w = 1.0;
    if (!measures.empty()) {
      w = 0.0;
      for (const auto& [view, coeff] : measures) w += coeff * view[row];
    }
    values_[static_cast<size_t>(offset)] += w;
    total_ += w;
  }
  return Status::OK();
}

Result<DataCube> DataCube::BuildFromQueryPredicates(const query::BoundQuery& q,
                                                    const CubeOptions& options) {
  std::vector<query::DimensionAttribute> attrs;
  for (const auto& d : q.dims) {
    for (const auto& p : d.predicates) {
      query::DimensionAttribute a;
      a.table = d.table;
      a.column = p.column;
      a.domain = p.domain;
      attrs.push_back(std::move(a));
    }
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("query has no predicates to build a cube over");
  }
  return Build(q, attrs, options);
}

double DataCube::CellAt(const std::vector<int64_t>& index) const {
  DPSTARJ_CHECK(index.size() == sizes_.size(), "cube index arity mismatch");
  int64_t offset = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    DPSTARJ_CHECK(index[i] >= 0 && index[i] < sizes_[i], "cube index out of range");
    offset += index[i] * strides_[i];
  }
  return values_[static_cast<size_t>(offset)];
}

Result<double> DataCube::Evaluate(
    const std::vector<const query::BoundPredicate*>& preds) const {
  if (preds.size() != axes_.size()) {
    return Status::InvalidArgument("predicate arity must match cube axes");
  }
  // Each axis's match set is the contiguous interval [lo, hi] of its bound
  // predicate (full domain when null), so the matching cells are one
  // hyper-rectangle; sweep only that box, in stride order.
  const int n = static_cast<int>(axes_.size());
  std::vector<int64_t> lo(static_cast<size_t>(n), 0);
  std::vector<int64_t> hi(static_cast<size_t>(n), 0);
  for (int a = 0; a < n; ++a) {
    lo[static_cast<size_t>(a)] = 0;
    hi[static_cast<size_t>(a)] = sizes_[static_cast<size_t>(a)] - 1;
    if (preds[static_cast<size_t>(a)] != nullptr) {
      lo[static_cast<size_t>(a)] = std::max<int64_t>(
          preds[static_cast<size_t>(a)]->lo_index, 0);
      hi[static_cast<size_t>(a)] = std::min<int64_t>(
          preds[static_cast<size_t>(a)]->hi_index,
          sizes_[static_cast<size_t>(a)] - 1);
    }
    if (lo[static_cast<size_t>(a)] > hi[static_cast<size_t>(a)]) return 0.0;
  }

  double sum = 0.0;
  const int64_t inner_lo = lo[static_cast<size_t>(n - 1)];
  const int64_t inner_len =
      hi[static_cast<size_t>(n - 1)] - inner_lo + 1;  // innermost: stride 1
  std::vector<int64_t> idx(lo);
  int64_t base = 0;
  for (int a = 0; a + 1 < n; ++a) {
    base += lo[static_cast<size_t>(a)] * strides_[static_cast<size_t>(a)];
  }
  while (true) {
    const double* cell = values_.data() + base + inner_lo;
    for (int64_t i = 0; i < inner_len; ++i) sum += cell[i];
    int a = n - 2;
    for (; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] <= hi[static_cast<size_t>(a)]) {
        base += strides_[static_cast<size_t>(a)];
        break;
      }
      base -= (hi[static_cast<size_t>(a)] - lo[static_cast<size_t>(a)]) *
              strides_[static_cast<size_t>(a)];
      idx[static_cast<size_t>(a)] = lo[static_cast<size_t>(a)];
    }
    if (a < 0) break;
  }
  return sum;
}

Result<double> DataCube::EvaluateWeighted(
    const std::vector<std::vector<double>>& axis_weights) const {
  if (axis_weights.size() != axes_.size()) {
    return Status::InvalidArgument("weight arity must match cube axes");
  }
  for (size_t a = 0; a < axes_.size(); ++a) {
    if (static_cast<int64_t>(axis_weights[a].size()) != sizes_[a]) {
      return Status::InvalidArgument(
          Format("axis %zu weight vector has wrong size", a));
    }
  }
  double sum = 0.0;
  std::vector<int64_t> idx(axes_.size(), 0);
  for (size_t cell = 0; cell < values_.size(); ++cell) {
    if (values_[cell] != 0.0) {
      double w = 1.0;
      for (size_t a = 0; a < axes_.size(); ++a) {
        w *= axis_weights[a][static_cast<size_t>(idx[a])];
        if (w == 0.0) break;
      }
      sum += w * values_[cell];
    }
    for (int a = static_cast<int>(axes_.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes_[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
  return sum;
}

Result<std::vector<double>> DataCube::Marginal(int axis) const {
  if (axis < 0 || axis >= static_cast<int>(axes_.size())) {
    return Status::OutOfRange("axis out of range");
  }
  std::vector<double> out(static_cast<size_t>(sizes_[static_cast<size_t>(axis)]), 0.0);
  std::vector<int64_t> idx(axes_.size(), 0);
  for (size_t cell = 0; cell < values_.size(); ++cell) {
    out[static_cast<size_t>(idx[static_cast<size_t>(axis)])] += values_[cell];
    for (int a = static_cast<int>(axes_.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes_[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
  return out;
}

}  // namespace dpstarj::exec
