#include "exec/data_cube.h"

#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"

namespace dpstarj::exec {

Result<DataCube> DataCube::Build(
    const query::BoundQuery& q,
    const std::vector<query::DimensionAttribute>& attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("cube needs at least one attribute");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("cube does not support GROUP BY queries");
  }
  if (q.query.aggregate == query::AggregateKind::kAvg) {
    return Status::NotSupported(
        "cube cells are additive; AVG needs the executor path");
  }

  DataCube cube;
  int64_t cells = 1;
  // Per-axis: key → ordinal lookup built from the owning dimension.
  std::vector<std::unordered_map<int64_t, int64_t>> key_to_ordinal(attributes.size());
  std::vector<int> axis_fk_col(attributes.size(), -1);

  for (size_t a = 0; a < attributes.size(); ++a) {
    const auto& attr = attributes[a];
    const query::DimBinding* owner = nullptr;
    for (const auto& d : q.dims) {
      if (d.table == attr.table) {
        owner = &d;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::InvalidArgument(
          Format("cube attribute %s.%s: table not joined by the query",
                 attr.table.c_str(), attr.column.c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(int col, owner->dim->schema().FieldIndex(attr.column));
    DPSTARJ_ASSIGN_OR_RETURN(
        std::vector<int64_t> ordinals,
        ComputeDomainIndexes(owner->dim->column(col), attr.domain));
    const auto& keys = owner->dim->column(owner->dim_pk_col).int64_data();
    auto& map = key_to_ordinal[a];
    map.reserve(keys.size() * 2);
    for (size_t r = 0; r < keys.size(); ++r) map.emplace(keys[r], ordinals[r]);
    axis_fk_col[a] = owner->fact_fk_col;

    CubeAxis axis;
    axis.table = attr.table;
    axis.column = attr.column;
    axis.domain = attr.domain;
    cube.axes_.push_back(std::move(axis));
    cube.sizes_.push_back(attr.domain.size());
    if (cells > (int64_t{1} << 40) / attr.domain.size()) {
      return Status::InvalidArgument("cube too large");
    }
    cells *= attr.domain.size();
  }

  cube.strides_.assign(cube.sizes_.size(), 1);
  for (int i = static_cast<int>(cube.sizes_.size()) - 2; i >= 0; --i) {
    cube.strides_[static_cast<size_t>(i)] =
        cube.strides_[static_cast<size_t>(i + 1)] * cube.sizes_[static_cast<size_t>(i + 1)];
  }
  cube.values_.assign(static_cast<size_t>(cells), 0.0);

  // Also honour joined dimensions that are NOT cube axes: rows whose FK
  // misses such a dimension do not join and must be dropped.
  std::vector<std::unordered_map<int64_t, bool>> other_dims;
  std::vector<int> other_fk_col;
  for (const auto& d : q.dims) {
    bool is_axis = false;
    for (const auto& attr : attributes) {
      if (attr.table == d.table) {
        is_axis = true;
        break;
      }
    }
    if (is_axis) continue;
    std::unordered_map<int64_t, bool> keys;
    const auto& pk = d.dim->column(d.dim_pk_col).int64_data();
    keys.reserve(pk.size() * 2);
    for (int64_t k : pk) keys.emplace(k, true);
    other_dims.push_back(std::move(keys));
    other_fk_col.push_back(d.fact_fk_col);
  }

  for (int64_t row = 0; row < q.fact->num_rows(); ++row) {
    int64_t offset = 0;
    bool ok = true;
    for (size_t a = 0; a < attributes.size(); ++a) {
      int64_t key =
          q.fact->column(axis_fk_col[a]).int64_data()[static_cast<size_t>(row)];
      auto it = key_to_ordinal[a].find(key);
      if (it == key_to_ordinal[a].end() || it->second < 0) {
        ok = false;
        break;
      }
      offset += it->second * cube.strides_[a];
    }
    if (ok) {
      for (size_t i = 0; i < other_dims.size(); ++i) {
        int64_t key = q.fact->column(other_fk_col[i])
                          .int64_data()[static_cast<size_t>(row)];
        if (other_dims[i].find(key) == other_dims[i].end()) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      ++cube.dropped_rows_;
      continue;
    }
    double w = 1.0;
    if (!q.measure_cols.empty()) {
      w = 0.0;
      for (const auto& [col, coeff] : q.measure_cols) {
        w += coeff * q.fact->column(col).GetNumeric(row);
      }
    }
    cube.values_[static_cast<size_t>(offset)] += w;
    cube.total_ += w;
  }
  return cube;
}

Result<DataCube> DataCube::BuildFromQueryPredicates(const query::BoundQuery& q) {
  std::vector<query::DimensionAttribute> attrs;
  for (const auto& d : q.dims) {
    for (const auto& p : d.predicates) {
      query::DimensionAttribute a;
      a.table = d.table;
      a.column = p.column;
      a.domain = p.domain;
      attrs.push_back(std::move(a));
    }
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("query has no predicates to build a cube over");
  }
  return Build(q, attrs);
}

double DataCube::CellAt(const std::vector<int64_t>& index) const {
  DPSTARJ_CHECK(index.size() == sizes_.size(), "cube index arity mismatch");
  int64_t offset = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    DPSTARJ_CHECK(index[i] >= 0 && index[i] < sizes_[i], "cube index out of range");
    offset += index[i] * strides_[i];
  }
  return values_[static_cast<size_t>(offset)];
}

Result<double> DataCube::Evaluate(
    const std::vector<const query::BoundPredicate*>& preds) const {
  if (preds.size() != axes_.size()) {
    return Status::InvalidArgument("predicate arity must match cube axes");
  }
  // Walk all cells; for each axis precompute the match mask.
  std::vector<std::vector<char>> match(axes_.size());
  for (size_t a = 0; a < axes_.size(); ++a) {
    match[a].assign(static_cast<size_t>(sizes_[a]), 1);
    if (preds[a] != nullptr) {
      for (int64_t i = 0; i < sizes_[a]; ++i) {
        match[a][static_cast<size_t>(i)] = preds[a]->Matches(i) ? 1 : 0;
      }
    }
  }
  double sum = 0.0;
  std::vector<int64_t> idx(axes_.size(), 0);
  for (size_t cell = 0; cell < values_.size(); ++cell) {
    bool ok = true;
    for (size_t a = 0; a < axes_.size(); ++a) {
      if (!match[a][static_cast<size_t>(idx[a])]) {
        ok = false;
        break;
      }
    }
    if (ok) sum += values_[cell];
    // Increment multi-index.
    for (int a = static_cast<int>(axes_.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes_[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
  return sum;
}

Result<double> DataCube::EvaluateWeighted(
    const std::vector<std::vector<double>>& axis_weights) const {
  if (axis_weights.size() != axes_.size()) {
    return Status::InvalidArgument("weight arity must match cube axes");
  }
  for (size_t a = 0; a < axes_.size(); ++a) {
    if (static_cast<int64_t>(axis_weights[a].size()) != sizes_[a]) {
      return Status::InvalidArgument(
          Format("axis %zu weight vector has wrong size", a));
    }
  }
  double sum = 0.0;
  std::vector<int64_t> idx(axes_.size(), 0);
  for (size_t cell = 0; cell < values_.size(); ++cell) {
    if (values_[cell] != 0.0) {
      double w = 1.0;
      for (size_t a = 0; a < axes_.size(); ++a) {
        w *= axis_weights[a][static_cast<size_t>(idx[a])];
        if (w == 0.0) break;
      }
      sum += w * values_[cell];
    }
    for (int a = static_cast<int>(axes_.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes_[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
  return sum;
}

Result<std::vector<double>> DataCube::Marginal(int axis) const {
  if (axis < 0 || axis >= static_cast<int>(axes_.size())) {
    return Status::OutOfRange("axis out of range");
  }
  std::vector<double> out(static_cast<size_t>(sizes_[static_cast<size_t>(axis)]), 0.0);
  std::vector<int64_t> idx(axes_.size(), 0);
  for (size_t cell = 0; cell < values_.size(); ++cell) {
    out[static_cast<size_t>(idx[static_cast<size_t>(axis)])] += values_[cell];
    for (int a = static_cast<int>(axes_.size()) - 1; a >= 0; --a) {
      if (++idx[static_cast<size_t>(a)] < sizes_[static_cast<size_t>(a)]) break;
      idx[static_cast<size_t>(a)] = 0;
    }
  }
  return out;
}

}  // namespace dpstarj::exec
