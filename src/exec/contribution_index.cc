#include "exec/contribution_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"
#include "exec/group_code.h"

namespace dpstarj::exec {

double ContributionIndex::TruncatedTotal(double tau) const {
  if (tau <= 0) return 0.0;
  if (ladder_.size() == contributions.size()) return ladder_.At(tau);
  // No prepared ladder (hand-assembled struct): one exact O(n) pass.
  double s = 0.0;
  for (double c : contributions) s += std::min(c, tau);
  return s;
}

namespace {

// Dimension-row verdict stored in the KeyIndex: the row index when the row
// passes the query's predicates, kFilteredOut otherwise (dimension tables are
// assumed to fit int32 rows — the fact table is the big one).
constexpr int32_t kFilteredOut = -1;

// The exact composite identity of a private individual: one grouping value
// per private dimension, compared element-wise (hashing is only bucket
// placement — distinct individuals can never merge).
struct IndividualKey {
  std::vector<int64_t> parts;
  bool operator==(const IndividualKey& o) const { return parts == o.parts; }
};

struct IndividualKeyHash {
  // splitmix64 finalizer, chained per part.
  static uint64_t Mix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  size_t operator()(const IndividualKey& k) const {
    uint64_t h = 0;
    for (int64_t p : k.parts) h = Mix64(h ^ static_cast<uint64_t>(p));
    return static_cast<size_t>(h);
  }
};

}  // namespace

Result<ContributionIndex> BuildContributionIndex(
    const query::BoundQuery& q, const std::vector<std::string>& private_tables) {
  if (private_tables.empty()) {
    return Status::InvalidArgument("private_tables must be non-empty");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("contribution index does not support GROUP BY");
  }
  if (q.query.aggregate == query::AggregateKind::kAvg) {
    return Status::NotSupported(
        "contributions are additive; the baselines do not support AVG");
  }

  bool fact_private = false;
  // Per private entry: the dim index and, for "Table.column" specs, the
  // grouping column within the dimension (-1 = group by primary key).
  std::vector<std::pair<int, int>> private_dims;
  for (const auto& spec : private_tables) {
    if (spec == q.query.fact_table) {
      fact_private = true;
      continue;
    }
    std::string table = spec;
    std::string column;
    auto dot = spec.find('.');
    if (dot != std::string::npos) {
      table = spec.substr(0, dot);
      column = spec.substr(dot + 1);
    }
    int found = -1;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      if (q.dims[i].table == table) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(
          Format("private table '%s' is not joined by the query", table.c_str()));
    }
    int col = -1;
    if (!column.empty()) {
      DPSTARJ_ASSIGN_OR_RETURN(
          col, q.dims[static_cast<size_t>(found)].dim->schema().FieldIndex(column));
      if (q.dims[static_cast<size_t>(found)].dim->column(col).type() ==
          storage::ValueType::kDouble) {
        return Status::InvalidArgument("grouping column must not be double");
      }
    }
    private_dims.emplace_back(found, col);
  }

  // Per-dimension verdict index (key → passing row / kFilteredOut), with the
  // same dense-offset-table fast path as the executor's scan.
  std::vector<KeyIndex> verdicts(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    std::vector<std::vector<int64_t>> ordinals(d.predicates.size());
    for (size_t p = 0; p < d.predicates.size(); ++p) {
      DPSTARJ_ASSIGN_OR_RETURN(
          ordinals[p],
          ComputeDomainIndexes(d.dim->column(d.predicates[p].column_index),
                               d.predicates[p].domain));
    }
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    std::vector<int32_t> payload(keys.size());
    for (size_t r = 0; r < keys.size(); ++r) {
      bool pass = true;
      for (size_t j = 0; j < d.predicates.size() && pass; ++j) {
        pass = ordinals[j][r] >= 0 && d.predicates[j].Matches(ordinals[j][r]);
      }
      payload[r] = pass ? static_cast<int32_t>(r) : kFilteredOut;
    }
    DPSTARJ_ASSIGN_OR_RETURN(verdicts[i], KeyIndex::Build(keys, payload));
  }

  // Per private dim: dimension row → grouping value (the pk itself, or the
  // grouping column's int value / dictionary code).
  std::vector<std::vector<int64_t>> group_vals(private_dims.size());
  for (size_t p = 0; p < private_dims.size(); ++p) {
    auto [dim_idx, col] = private_dims[p];
    const query::DimBinding& d = q.dims[static_cast<size_t>(dim_idx)];
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    group_vals[p].resize(keys.size());
    for (size_t r = 0; r < keys.size(); ++r) {
      int64_t g = keys[r];
      if (col >= 0) {
        const storage::Column& c = d.dim->column(col);
        g = c.type() == storage::ValueType::kString
                ? static_cast<int64_t>(c.GetStringCode(static_cast<int64_t>(r)))
                : c.GetInt64(static_cast<int64_t>(r));
      }
      group_vals[p][r] = g;
    }
  }

  // Hoisted fact-side spans.
  std::vector<const int64_t*> fk_data(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    fk_data[i] = q.fact->column(q.dims[i].fact_fk_col).int64_data().data();
  }
  std::vector<std::pair<storage::Column::NumericView, double>> measures;
  measures.reserve(q.measure_cols.size());
  for (const auto& [col, coeff] : q.measure_cols) {
    measures.emplace_back(q.fact->column(col).numeric_view(), coeff);
  }

  ContributionIndex index;
  std::unordered_map<IndividualKey, double, IndividualKeyHash> by_individual;
  std::vector<int32_t> matched_rows(q.dims.size());
  IndividualKey key;
  key.parts.resize(private_dims.size());
  for (int64_t row = 0; row < q.fact->num_rows(); ++row) {
    bool ok = true;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      int32_t v = verdicts[i].Lookup(fk_data[i][row]);
      if (v < 0) {  // absent foreign key or filtered-out dimension row
        ok = false;
        break;
      }
      matched_rows[i] = v;
    }
    if (!ok) continue;

    double w = 1.0;
    if (!measures.empty()) {
      w = 0.0;
      for (const auto& [view, coeff] : measures) w += coeff * view[row];
    }
    index.total += w;

    if (fact_private && private_dims.empty()) {
      // (1,0)-private: each fact row is its own individual.
      index.contributions.push_back(w);
      continue;
    }
    for (size_t p = 0; p < private_dims.size(); ++p) {
      int dim_idx = private_dims[p].first;
      key.parts[p] = group_vals[p][static_cast<size_t>(
          matched_rows[static_cast<size_t>(dim_idx)])];
    }
    by_individual[key] += w;
  }

  for (const auto& [k, v] : by_individual) {
    (void)k;
    index.contributions.push_back(v);
  }
  for (double c : index.contributions) {
    index.max_contribution = std::max(index.max_contribution, c);
  }
  index.PrepareTruncation();
  return index;
}

}  // namespace dpstarj::exec
