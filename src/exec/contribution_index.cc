#include "exec/contribution_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"

namespace dpstarj::exec {

double ContributionIndex::TruncatedTotal(double tau) const {
  if (tau <= 0) return 0.0;
  double s = 0.0;
  for (double c : contributions) s += std::min(c, tau);
  return s;
}

namespace {

// 64-bit mix for combining key components (splitmix64 finalizer).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Result<ContributionIndex> BuildContributionIndex(
    const query::BoundQuery& q, const std::vector<std::string>& private_tables) {
  if (private_tables.empty()) {
    return Status::InvalidArgument("private_tables must be non-empty");
  }
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("contribution index does not support GROUP BY");
  }
  if (q.query.aggregate == query::AggregateKind::kAvg) {
    return Status::NotSupported(
        "contributions are additive; the baselines do not support AVG");
  }

  bool fact_private = false;
  // Per private entry: the dim index and, for "Table.column" specs, the
  // grouping column within the dimension (-1 = group by primary key).
  std::vector<std::pair<int, int>> private_dims;
  for (const auto& spec : private_tables) {
    if (spec == q.query.fact_table) {
      fact_private = true;
      continue;
    }
    std::string table = spec;
    std::string column;
    auto dot = spec.find('.');
    if (dot != std::string::npos) {
      table = spec.substr(0, dot);
      column = spec.substr(dot + 1);
    }
    int found = -1;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      if (q.dims[i].table == table) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(
          Format("private table '%s' is not joined by the query", table.c_str()));
    }
    int col = -1;
    if (!column.empty()) {
      DPSTARJ_ASSIGN_OR_RETURN(
          col, q.dims[static_cast<size_t>(found)].dim->schema().FieldIndex(column));
      if (q.dims[static_cast<size_t>(found)].dim->column(col).type() ==
          storage::ValueType::kDouble) {
        return Status::InvalidArgument("grouping column must not be double");
      }
    }
    private_dims.emplace_back(found, col);
  }

  // Per-dimension predicate pass sets (key → pass).
  std::vector<std::unordered_map<int64_t, bool>> pass(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    std::vector<std::vector<int64_t>> ordinals(d.predicates.size());
    for (size_t p = 0; p < d.predicates.size(); ++p) {
      DPSTARJ_ASSIGN_OR_RETURN(
          ordinals[p],
          ComputeDomainIndexes(d.dim->column(d.predicates[p].column_index),
                               d.predicates[p].domain));
    }
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    pass[i].reserve(keys.size() * 2);
    for (size_t r = 0; r < keys.size(); ++r) {
      bool p = true;
      for (size_t j = 0; j < d.predicates.size() && p; ++j) {
        p = ordinals[j][r] >= 0 && d.predicates[j].Matches(ordinals[j][r]);
      }
      pass[i].emplace(keys[r], p);
    }
  }

  std::vector<const std::vector<int64_t>*> fk_data(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    fk_data[i] = &q.fact->column(q.dims[i].fact_fk_col).int64_data();
  }

  // Per private dim: primary key → grouping value (the pk itself, or the
  // grouping column's int value / dictionary code).
  std::vector<std::unordered_map<int64_t, int64_t>> group_of(private_dims.size());
  for (size_t p = 0; p < private_dims.size(); ++p) {
    auto [dim_idx, col] = private_dims[p];
    const query::DimBinding& d = q.dims[static_cast<size_t>(dim_idx)];
    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    group_of[p].reserve(keys.size() * 2);
    for (size_t r = 0; r < keys.size(); ++r) {
      int64_t g = keys[r];
      if (col >= 0) {
        const storage::Column& c = d.dim->column(col);
        g = c.type() == storage::ValueType::kString
                ? static_cast<int64_t>(c.GetStringCode(static_cast<int64_t>(r)))
                : c.GetInt64(static_cast<int64_t>(r));
      }
      group_of[p].emplace(keys[r], g);
    }
  }

  ContributionIndex index;
  std::unordered_map<uint64_t, double> by_individual;
  for (int64_t row = 0; row < q.fact->num_rows(); ++row) {
    bool ok = true;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      auto it = pass[i].find((*fk_data[i])[static_cast<size_t>(row)]);
      if (it == pass[i].end() || !it->second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    double w = 1.0;
    if (!q.measure_cols.empty()) {
      w = 0.0;
      for (const auto& [col, coeff] : q.measure_cols) {
        w += coeff * q.fact->column(col).GetNumeric(row);
      }
    }
    index.total += w;

    if (fact_private && private_dims.empty()) {
      // (1,0)-private: each fact row is its own individual.
      index.contributions.push_back(w);
      continue;
    }
    uint64_t h = 0;
    for (size_t p = 0; p < private_dims.size(); ++p) {
      int dim_idx = private_dims[p].first;
      int64_t key =
          (*fk_data[static_cast<size_t>(dim_idx)])[static_cast<size_t>(row)];
      int64_t group = group_of[p].at(key);
      h = Mix64(h ^ Mix64(static_cast<uint64_t>(group) +
                          static_cast<uint64_t>(p) * 0x9e37ULL));
    }
    by_individual[h] += w;
  }

  for (const auto& [k, v] : by_individual) {
    (void)k;
    index.contributions.push_back(v);
  }
  for (double c : index.contributions) {
    index.max_contribution = std::max(index.max_contribution, c);
  }
  return index;
}

}  // namespace dpstarj::exec
