// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/domain.h"

namespace dpstarj::exec {

/// \brief Maps every row of `column` to its ordinal in `domain`, or -1 when
/// the value is outside the domain.
///
/// Integer columns translate by offset; string columns translate dictionary
/// codes through a memoized code→ordinal table (O(|dict| + rows)).
Result<std::vector<int64_t>> ComputeDomainIndexes(const storage::Column& column,
                                                  const storage::AttributeDomain& domain);

}  // namespace dpstarj::exec
