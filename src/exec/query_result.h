// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dpstarj::exec {

/// \brief The answer of a star-join query: a scalar aggregate, or per-group
/// aggregates keyed by a rendered group label (e.g. "1997|MFGR#12").
struct QueryResult {
  /// Scalar answer (COUNT/SUM without GROUP BY).
  double scalar = 0.0;
  /// True when the query had GROUP BY.
  bool grouped = false;
  /// Per-group aggregates, ordered by label (GROUP BY path).
  std::map<std::string, double> groups;

  /// Fact-table mutation epoch the answer was computed (or replayed) at —
  /// stamped by the service under its per-table read lock, so clients of a
  /// live table can tell exactly which version of the data they observed.
  /// 0 for tables that were never appended to after load.
  uint64_t epoch = 0;

  /// Sum over groups (== scalar for non-grouped results).
  double Total() const;

  /// \brief Mean relative error (%) of this result against the ground truth.
  ///
  /// Scalars compare directly. Grouped results average the per-group relative
  /// error over the *true* groups; a group absent from the estimate counts as
  /// 100% error (paper §5.3 perturbs only pre-GROUP-BY predicates, so the
  /// estimated grouping can drop groups).
  double MeanRelativeErrorPercent(const QueryResult& truth) const;

  /// \brief Relative error (%) of the result's *total* against the truth's.
  ///
  /// For GROUP BY queries this is the error of the grand aggregate — the
  /// metric the paper's Table 1 Qg rows are consistent with (per-group label
  /// matching degenerates to ~100% whenever a perturbed predicate moves the
  /// group universe; see EXPERIMENTS.md).
  double TotalRelativeErrorPercent(const QueryResult& truth) const;

  /// Debug rendering.
  std::string ToString() const;
};

/// Delimiter used between group-key parts in rendered group labels.
inline constexpr char kGroupKeyDelimiter = '|';

}  // namespace dpstarj::exec
