#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/cpu.h"
#include "common/thread_name.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpstarj::exec {

namespace {

std::atomic<bool> g_pin_workers{false};

// Pins the calling thread to `core` (mod the visible cores). Best-effort:
// a failed affinity call just leaves the thread to the scheduler.
void PinSelfToCore(int core) {
#if defined(__linux__)
  const int cores = std::max(HostCpu().cores, 1);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core % cores), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

int64_t DefaultMorselSize() {
  const int64_t l2 = HostCpu().l2_bytes;
  if (l2 <= 0) return int64_t{1} << 16;
  constexpr int64_t kBytesPerRow = 32;
  return std::clamp(l2 / kBytesPerRow, int64_t{1} << 14, int64_t{1} << 18);
}

void MorselPool::SetPinWorkers(bool on) {
  g_pin_workers.store(on, std::memory_order_relaxed);
}

MorselPool::~MorselPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

MorselPool& MorselPool::Shared() {
  static MorselPool* pool = new MorselPool();  // leaked: outlives static dtors
  return *pool;
}

int MorselPool::ResolveWorkers(int threads, int64_t morsel_size, int64_t total) {
  int num_workers = threads;
  if (num_workers <= 0) {
    num_workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  const int64_t morsels =
      morsel_size > 0 ? (total + morsel_size - 1) / morsel_size : 1;
  return static_cast<int>(std::min<int64_t>(std::max(num_workers, 1),
                                            std::max<int64_t>(morsels, 1)));
}

int MorselPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

std::vector<MorselPool::WorkerStats> MorselPool::worker_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStats> out(worker_counters_.size());
  for (size_t i = 0; i < worker_counters_.size(); ++i) {
    out[i].busy_ns = worker_counters_[i].busy_ns.load(std::memory_order_relaxed);
    out[i].roles = worker_counters_[i].roles.load(std::memory_order_relaxed);
  }
  return out;
}

void MorselPool::RunRole(const Job& job, int role) {
  const int64_t num_morsels =
      (job.total + job.morsel_size - 1) / job.morsel_size;
  for (int64_t m = role; m < num_morsels; m += job.num_workers) {
    const int64_t begin = m * job.morsel_size;
    const int64_t end = std::min(begin + job.morsel_size, job.total);
    (*job.fn)(role, begin, end);
  }
}

void MorselPool::FinishRole(Job* job) {
  bool job_done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_done = (++job->completed_roles == job->num_workers);
  }
  // Wake every waiting caller; each re-checks its own job. Role completions
  // are rare (per job, not per morsel), so the broadcast is cheap.
  if (job_done) done_cv_.notify_all();
}

void MorselPool::EnsureThreads(int n) {
  while (static_cast<int>(threads_.size()) < n) {
    const int index = static_cast<int>(threads_.size());
    const bool pin = g_pin_workers.load(std::memory_order_relaxed);
    WorkerCounters* counters = &worker_counters_.emplace_back();
    threads_.emplace_back([this, index, pin, counters] {
      common::SetCurrentThreadName("dpsj-morsel-", index);
      // Core 0 is skipped: the calling thread (always role 0) usually lives
      // there, and stacking a pool worker on it serializes the two largest
      // shares of every scan.
      if (pin) PinSelfToCore(index + 1);
      ThreadLoop(counters);
    });
  }
}

void MorselPool::ThreadLoop(WorkerCounters* counters) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
    if (shutdown_) return;
    Job* job = pending_.front();
    const int role = job->next_role++;
    if (job->next_role >= job->num_workers) pending_.pop_front();
    lock.unlock();
    const auto busy_start = std::chrono::steady_clock::now();
    RunRole(*job, role);
    counters->busy_ns.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - busy_start)
                .count()),
        std::memory_order_relaxed);
    counters->roles.fetch_add(1, std::memory_order_relaxed);
    FinishRole(job);
    lock.lock();
  }
}

void MorselPool::Run(int num_workers, int64_t total, int64_t morsel_size,
                     const MorselFn& fn) {
  if (total <= 0) return;
  if (morsel_size <= 0) morsel_size = total;
  const int64_t num_morsels = (total + morsel_size - 1) / morsel_size;
  num_workers = static_cast<int>(
      std::min<int64_t>(std::max(num_workers, 1), num_morsels));

  Job job;
  job.fn = &fn;
  job.total = total;
  job.morsel_size = morsel_size;
  job.num_workers = num_workers;

  if (num_workers == 1) {
    RunRole(job, 0);  // inline fast path: no locks, no pool threads
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureThreads(num_workers - 1);
    pending_.push_back(&job);
  }
  work_cv_.notify_all();

  RunRole(job, 0);  // the calling thread always executes role 0
  FinishRole(&job);

  // Adopt any roles of our own job the pool has not picked up yet (work
  // conservation: a Run never waits on threads busy with other jobs), then
  // wait for the roles that are genuinely running elsewhere.
  std::unique_lock<std::mutex> lock(mu_);
  while (job.next_role < job.num_workers) {
    const int role = job.next_role++;
    if (job.next_role >= job.num_workers) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), &job));
    }
    lock.unlock();
    RunRole(job, role);
    FinishRole(&job);
    lock.lock();
  }
  done_cv_.wait(lock, [&] { return job.completed_roles == job.num_workers; });
}

}  // namespace dpstarj::exec
