// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Per-individual contribution analysis for the output-perturbation baselines.
//
// Under the (a,b)-private neighboring definitions (paper §3.2), deleting one
// private tuple (or one tuple per private dimension, sharing a fact-side key
// conjunction) removes every fact row referencing it. The "contribution" of a
// private individual is therefore the total query weight of the fact rows it
// owns. The baselines consume this:
//   * LS  — local sensitivity = max contribution;
//   * R2T — Q(D, τ) = Σ min(contribution_i, τ) over individuals;
//   * LM  — (1,0)-private: every fact row is its own individual.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Sorted-prefix-sum view of a contribution multiset: each truncated
/// total Σ min(cᵢ, τ) is O(log n) after one O(n log n) preparation — R2T-style
/// consumers evaluate a geometric ladder of τ values against the same set.
class TruncatedTotals {
 public:
  TruncatedTotals() = default;
  explicit TruncatedTotals(const std::vector<double>& contributions)
      : sorted_(contributions) {
    std::sort(sorted_.begin(), sorted_.end());
    prefix_.resize(sorted_.size() + 1);
    prefix_[0] = 0.0;
    for (size_t i = 0; i < sorted_.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + sorted_[i];
    }
  }

  /// Σ min(cᵢ, τ) = Σ_{c ≤ τ} c + τ·|{c > τ}|.
  double At(double tau) const {
    if (prefix_.empty()) return 0.0;  // default-constructed ladder
    size_t k = static_cast<size_t>(
        std::upper_bound(sorted_.begin(), sorted_.end(), tau) - sorted_.begin());
    return prefix_[k] + tau * static_cast<double>(sorted_.size() - k);
  }

  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
  std::vector<double> prefix_;  // prefix_[i] = Σ sorted_[0..i)
};

/// \brief Contributions of private individuals to a star-join query.
struct ContributionIndex {
  /// Per-individual total weight, for individuals with non-zero weight.
  std::vector<double> contributions;
  /// Largest contribution (0 when the query result is empty).
  double max_contribution = 0.0;
  /// The true query answer Σ contributions.
  double total = 0.0;

  /// Q(D, τ): the truncated answer Σ min(contribution_i, τ) (paper §4, R2T).
  /// O(log n) per call on an index from BuildContributionIndex (which
  /// prepares the sorted prefix-sum ladder once); O(n) on a hand-assembled
  /// struct. Const and thread-safe either way. Mutating `contributions`
  /// after PrepareTruncation() without calling it again serves stale totals
  /// when the length is unchanged.
  double TruncatedTotal(double tau) const;

  /// Rebuilds the O(log n) ladder from the current `contributions`.
  void PrepareTruncation() { ladder_ = TruncatedTotals(contributions); }

  /// The prepared ladder (empty on hand-assembled structs — check size()
  /// against contributions before using directly).
  const TruncatedTotals& truncation_ladder() const { return ladder_; }

 private:
  TruncatedTotals ladder_;
};

/// \brief Groups matching fact rows by the conjunction of foreign keys into
/// `private_tables` and accumulates each group's query weight.
///
/// `private_tables` entries are either
///  * a joined dimension table name — individuals are that table's tuples
///    (grouping key: the fact-side foreign key);
///  * "Table.column" — individuals are the distinct values of `column` in
///    joined dimension `Table`. This expresses deeper snowflake entities on a
///    flattened schema (e.g. "Orders.custkey" = customer-level privacy when
///    Customer has been absorbed into Orders);
///  * the fact table name for the (1,0)-private scenario, where every fact
///    row is its own individual.
/// Individuals are keyed by the exact composite of their per-dimension
/// grouping values (never a mixed hash), so two distinct individuals can
/// never merge — a collision would silently under-count sensitivity.
/// Grouped queries are not supported (the baselines under comparison do not
/// support GROUP BY either).
Result<ContributionIndex> BuildContributionIndex(
    const query::BoundQuery& q, const std::vector<std::string>& private_tables);

}  // namespace dpstarj::exec
