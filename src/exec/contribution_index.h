// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Per-individual contribution analysis for the output-perturbation baselines.
//
// Under the (a,b)-private neighboring definitions (paper §3.2), deleting one
// private tuple (or one tuple per private dimension, sharing a fact-side key
// conjunction) removes every fact row referencing it. The "contribution" of a
// private individual is therefore the total query weight of the fact rows it
// owns. The baselines consume this:
//   * LS  — local sensitivity = max contribution;
//   * R2T — Q(D, τ) = Σ min(contribution_i, τ) over individuals;
//   * LM  — (1,0)-private: every fact row is its own individual.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Contributions of private individuals to a star-join query.
struct ContributionIndex {
  /// Per-individual total weight, for individuals with non-zero weight.
  std::vector<double> contributions;
  /// Largest contribution (0 when the query result is empty).
  double max_contribution = 0.0;
  /// The true query answer Σ contributions.
  double total = 0.0;

  /// Q(D, τ): the truncated answer Σ min(contribution_i, τ) (paper §4, R2T).
  double TruncatedTotal(double tau) const;
};

/// \brief Groups matching fact rows by the conjunction of foreign keys into
/// `private_tables` and accumulates each group's query weight.
///
/// `private_tables` entries are either
///  * a joined dimension table name — individuals are that table's tuples
///    (grouping key: the fact-side foreign key);
///  * "Table.column" — individuals are the distinct values of `column` in
///    joined dimension `Table`. This expresses deeper snowflake entities on a
///    flattened schema (e.g. "Orders.custkey" = customer-level privacy when
///    Customer has been absorbed into Orders);
///  * the fact table name for the (1,0)-private scenario, where every fact
///    row is its own individual.
/// Grouped queries are not supported (the baselines under comparison do not
/// support GROUP BY either).
Result<ContributionIndex> BuildContributionIndex(
    const query::BoundQuery& q, const std::vector<std::string>& private_tables);

}  // namespace dpstarj::exec
