// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// A materialized data cube: the star-join pre-aggregated over the joint
// domain of chosen dimension attributes. Cell (i_1, ..., i_n) holds
// Σ w(t) over fact rows whose joined dimension attributes take those domain
// ordinals. This is the vector W of Eq. (11): any predicate query over the
// attributes is a dot product against the cube, which makes repeated-noise
// experiments and Workload Decomposition evaluation cheap.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/parallel.h"
#include "query/binder.h"
#include "query/workload.h"

namespace dpstarj::exec {

/// \brief One cube axis: a dimension attribute and its domain.
struct CubeAxis {
  std::string table;
  std::string column;
  storage::AttributeDomain domain;
};

/// \brief Tuning for the cube-building fact scan.
struct CubeOptions {
  /// Worker threads for the fact scan. 1 (default) runs on the calling
  /// thread; 0 means one worker per hardware thread. Like the executor,
  /// morsels are statically assigned and worker partials merge in worker
  /// order, so results are reproducible at any fixed thread count and exact
  /// sums (COUNT, integer-valued SUM) are identical across thread counts.
  /// Parallelism is skipped when the cube is too large for per-worker
  /// partials (> ~4M cells).
  int threads = 1;
  /// Rows per scan morsel (parallel granularity). The default is sized to
  /// the detected per-core L2 (exec/parallel.h, DefaultMorselSize).
  int64_t morsel_size = DefaultMorselSize();
  /// Forces the legacy row-at-a-time, hash-probing build (kept as the
  /// benchmark baseline for the fused dense-LUT scan).
  bool force_legacy = false;
};

/// \brief Dense cube over the joint domain of dimension attributes.
class DataCube {
 public:
  /// \brief Builds the cube for `q` over the given attributes. Every
  /// attribute must belong to a dimension joined by `q`. The cell weight is
  /// the query's aggregate weight (1 for COUNT, the measure for SUM).
  ///
  /// Fact rows holding attribute values outside a declared domain are dropped
  /// and counted in dropped_rows() — well-formed instances have none.
  ///
  /// The scan resolves each axis through a fused FK→domain-ordinal lookup
  /// table (a dense offset table when the dimension's key space allows, the
  /// same density rule as exec::KeyIndex) and runs morsel-parallel on the
  /// shared MorselPool per `options`.
  static Result<DataCube> Build(const query::BoundQuery& q,
                                const std::vector<query::DimensionAttribute>& attributes,
                                const CubeOptions& options = {});

  /// Builds over the query's own predicate attributes (axis order = the order
  /// of predicate-bearing dims in the bound query).
  static Result<DataCube> BuildFromQueryPredicates(const query::BoundQuery& q,
                                                   const CubeOptions& options = {});

  /// \brief Folds fact rows [first_row, q.fact->num_rows()) into the cube —
  /// the incremental counterpart of Build for streaming ingest. `q` must
  /// join every axis table (axes are revalidated against the query); the
  /// dimensions must be unchanged since the build. The tail is scanned
  /// sequentially in row order, so a cube maintained across appends equals
  /// a fresh sequential Build over the final table bit for bit
  /// (tests/ingest_test.cc asserts this).
  Status AppendRows(const query::BoundQuery& q, int64_t first_row);

  /// The axes, in build order.
  const std::vector<CubeAxis>& axes() const { return axes_; }
  /// Number of cells (product of axis sizes).
  int64_t num_cells() const { return static_cast<int64_t>(values_.size()); }
  /// Σ over all cells (the unfiltered query answer).
  double total() const { return total_; }
  /// Fact rows excluded because an attribute value was outside its domain.
  int64_t dropped_rows() const { return dropped_rows_; }

  /// Cell value by multi-index (bounds-checked).
  double CellAt(const std::vector<int64_t>& index) const;

  /// \brief Evaluates a conjunctive predicate query: preds[i] applies to axis
  /// i (nullptr = full domain). Returns Σ over matching cells.
  ///
  /// Bound predicates are closed index ranges, so each axis's match mask is a
  /// contiguous interval and the matching cells form a hyper-rectangle: the
  /// sweep visits only that box in stride order (the innermost axis is
  /// contiguous memory) instead of odometer-walking every cell. Summation
  /// order equals the old full-walk order, so answers are bit-identical.
  Result<double> Evaluate(const std::vector<const query::BoundPredicate*>& preds) const;

  /// \brief Weighted evaluation for Workload Decomposition: each axis i has a
  /// real-valued weight vector w_i over its domain, and the answer is
  /// Σ_cell Π_i w_i[idx_i] · cube[cell] (row-wise Kronecker dot product).
  Result<double> EvaluateWeighted(
      const std::vector<std::vector<double>>& axis_weights) const;

  /// Marginal histogram of one axis (Σ over the other axes).
  Result<std::vector<double>> Marginal(int axis) const;

 private:
  std::vector<CubeAxis> axes_;
  std::vector<int64_t> sizes_;
  std::vector<int64_t> strides_;  // row-major
  std::vector<double> values_;
  double total_ = 0.0;
  int64_t dropped_rows_ = 0;
};

}  // namespace dpstarj::exec
