// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Morsel-parallel execution substrate: a reusable pool of worker threads that
// splits an index range [0, total) into fixed-size morsels. Each job exposes
// `num_workers` *roles*; role w owns morsels w, w+W, w+2W, ... and processes
// them in order. Static role→morsel assignment (rather than work stealing)
// makes every run with the same worker count process rows in exactly the same
// order regardless of which thread executes which role — partial aggregates
// merge deterministically, so a query answer is reproducible run-to-run at
// any fixed thread count.
//
// Concurrency model: jobs from concurrent callers queue into the shared pool
// and their roles are claimed by whichever pool threads are free; the calling
// thread always executes role 0 and then adopts any still-unclaimed roles of
// its *own* job. A Run is therefore work-conserving and never blocks behind
// another caller's scan — with a busy pool it degrades to the caller scanning
// alone, which is exactly the "engine-pool workers divide the cores" regime
// of the service layer. Run(1, ...) touches no synchronization at all.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpstarj::exec {

/// \brief Pads and aligns a per-worker slot to its own coherence granule.
///
/// Worker partials live in contiguous vectors (one slot per role) and are
/// written on every morsel; unpadded, slots of adjacent workers land on the
/// same cache line and each accumulate turns into cross-core ownership
/// ping-pong (false sharing) — measurable as scan throughput that *drops*
/// when workers are added. 64 bytes covers the destructive-interference
/// granule of every x86-64 and AArch64 server part we target (HostCpu()
/// reports the actual line size for diagnostics, but alignment must be a
/// compile-time constant).
template <typename T>
struct alignas(64) CacheAligned {
  T value;
};

/// \brief Topology-derived default morsel granularity in fact rows: sized so
/// one morsel's streaming working set (~32 bytes per row: resolved dimension
/// rows, packed group code, weight) stays within the detected per-core L2
/// (common/cpu.h), clamped to [2^14, 2^18] rows. Falls back to 2^16 when the
/// OS reports no L2 size. Smaller morsels would thrash the job queue; larger
/// ones evict their own lines before the next pass over the range.
int64_t DefaultMorselSize();

/// \brief A reusable morsel worker pool with deterministic role assignment.
class MorselPool {
 public:
  /// Callback for one morsel: the role (worker index in [0, num_workers))
  /// and the half-open row range [begin, end).
  using MorselFn = std::function<void(int worker, int64_t begin, int64_t end)>;

  MorselPool() = default;
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// \brief Runs `fn` over [0, total) in morsels of `morsel_size` rows with
  /// `num_workers` roles. Blocks until every morsel has been processed.
  void Run(int num_workers, int64_t total, int64_t morsel_size, const MorselFn& fn);

  /// The process-wide shared pool.
  static MorselPool& Shared();

  /// \brief Resolves a worker count for a morsel scan of `total` items:
  /// `threads` ≤ 0 means one worker per hardware thread, and the result
  /// never exceeds the number of morsels, so tiny scans stay on the calling
  /// thread. Shared by every MorselPool caller (executor, plan sweep, cube
  /// build) so the 0-means-auto rule lives in one place.
  static int ResolveWorkers(int threads, int64_t morsel_size, int64_t total);

  /// Number of worker threads currently in the pool.
  int num_threads() const;

  /// \brief One pool thread's lifetime utilization snapshot. busy_ns counts
  /// time inside RunRole (claim-to-finish); everything else is idle wait.
  /// Covers pool threads only — the calling thread's role-0 work shows up in
  /// its own stage spans, not here.
  struct WorkerStats {
    uint64_t busy_ns = 0;
    uint64_t roles = 0;  ///< roles executed (≥1 morsel each)
  };

  /// Snapshot of every pool thread's counters, index-aligned with creation
  /// order (thread i is named "dpsj-morsel-i").
  std::vector<WorkerStats> worker_stats() const;

  /// \brief When enabled, pool threads created afterwards are pinned
  /// round-robin across the host's cores (the calling thread — role 0 —
  /// is left to the OS scheduler). Opt-in via dpstarj-server --pin-workers:
  /// pinning helps steady-state scans on dedicated hosts and hurts on
  /// shared/oversubscribed ones, so the default is off. Threads that already
  /// exist keep their affinity; enable before the first Run to pin the whole
  /// pool.
  static void SetPinWorkers(bool on);

 private:
  struct Job {
    const MorselFn* fn = nullptr;
    int64_t total = 0;
    int64_t morsel_size = 0;
    int num_workers = 0;
    int next_role = 1;       // roles 1..W-1 are claimable; 0 is the caller's
    int completed_roles = 0; // job done when == num_workers
  };

  // Per-thread busy counters, padded to a cache line: each pool thread
  // updates only its own slot, so the writes never contend. A deque keeps
  // slot addresses stable as EnsureThreads grows the pool.
  struct alignas(64) WorkerCounters {
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> roles{0};
  };

  static void RunRole(const Job& job, int role);
  // Marks one role of `job` finished; notifies the owning Run when the job
  // completes. Caller must NOT hold mu_.
  void FinishRole(Job* job);
  void EnsureThreads(int n);  // caller holds mu_
  void ThreadLoop(WorkerCounters* counters);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // pool threads: a job or shutdown arrived
  std::condition_variable done_cv_;  // callers: some role finished
  std::vector<std::thread> threads_;
  std::deque<WorkerCounters> worker_counters_;  // index-aligned with threads_
  std::deque<Job*> pending_;  // jobs with unclaimed roles, FIFO
  bool shutdown_ = false;
};

}  // namespace dpstarj::exec
