#include "exec/star_join_executor.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"
#include "exec/group_code.h"
#include "exec/kernels/kernels.h"
#include "exec/parallel.h"

namespace dpstarj::exec {

namespace {

// Renders one group-key part from a column cell.
std::string RenderCell(const storage::Column& col, int64_t row) {
  return col.GetValue(row).ToString();
}

// Resolves the effective predicate list of dimension i under overrides.
const std::vector<query::BoundPredicate>* EffectivePreds(
    const query::BoundQuery& q, const PredicateOverrides& overrides, size_t i) {
  if (!overrides.empty() && overrides[i].has_value()) return &*overrides[i];
  return &q.dims[i].predicates;
}

// ------------------------------------------------------------------------
// Legacy row-at-a-time pipeline. Kept verbatim as (a) the fallback when a
// GROUP BY key set cannot be packed into a 64-bit group code and (b) the
// baseline the benches compare the vectorized pipeline against.
// ------------------------------------------------------------------------

/// Per-dimension hash table entry: predicate verdict and the dimension row
/// (needed only when the dimension contributes GROUP BY keys).
struct DimEntry {
  bool pass = true;
  int64_t row = -1;
};

struct DimState {
  std::unordered_map<int64_t, DimEntry> by_key;
};

Result<QueryResult> ExecuteScalar(const query::BoundQuery& q,
                                  const PredicateOverrides& overrides,
                                  const ExecutorOptions& options) {
  // Build one hash table per dimension.
  std::vector<DimState> states(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    DimState& st = states[i];
    const std::vector<query::BoundPredicate>* preds =
        EffectivePreds(q, overrides, i);

    // Per-predicate domain ordinals of the filtered column.
    std::vector<std::vector<int64_t>> ordinals(preds->size());
    for (size_t p = 0; p < preds->size(); ++p) {
      const query::BoundPredicate& pred = (*preds)[p];
      if (pred.column_index < 0 ||
          pred.column_index >= d.dim->schema().num_fields()) {
        return Status::InvalidArgument("predicate has bad column index");
      }
      DPSTARJ_ASSIGN_OR_RETURN(
          ordinals[p],
          ComputeDomainIndexes(d.dim->column(pred.column_index), pred.domain));
    }

    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    st.by_key.reserve(keys.size() * 2);
    for (size_t r = 0; r < keys.size(); ++r) {
      DimEntry e;
      e.row = static_cast<int64_t>(r);
      for (size_t p = 0; p < preds->size() && e.pass; ++p) {
        int64_t ord = ordinals[p][r];
        e.pass = (ord >= 0) && (*preds)[p].Matches(ord);
      }
      auto [it, inserted] = st.by_key.emplace(keys[r], e);
      if (!inserted) {
        return Status::InvalidArgument(
            Format("duplicate primary key %lld in dimension '%s'",
                   static_cast<long long>(keys[r]), d.table.c_str()));
      }
    }
  }

  QueryResult result;
  result.grouped = !q.group_key_layout.empty();
  const bool is_avg = q.query.aggregate == query::AggregateKind::kAvg;
  double avg_rows = 0.0;
  std::map<std::string, double> group_rows;

  const int64_t fact_rows = q.fact->num_rows();
  // Resolve fk column data pointers once.
  std::vector<const std::vector<int64_t>*> fk_data(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    fk_data[i] = &q.fact->column(q.dims[i].fact_fk_col).int64_data();
  }

  std::vector<const DimEntry*> matched(q.dims.size());
  std::string label;
  for (int64_t row = 0; row < fact_rows; ++row) {
    bool pass = true;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      int64_t key = (*fk_data[i])[static_cast<size_t>(row)];
      auto it = states[i].by_key.find(key);
      if (it == states[i].by_key.end()) {
        if (options.strict_integrity) {
          return Status::InvalidArgument(
              Format("fact row %lld: foreign key %lld misses dimension '%s'",
                     static_cast<long long>(row), static_cast<long long>(key),
                     q.dims[i].table.c_str()));
        }
        pass = false;
        break;
      }
      if (!it->second.pass) {
        pass = false;
        break;
      }
      matched[i] = &it->second;
    }
    if (!pass) continue;

    double w = 1.0;
    if (!q.measure_cols.empty()) {
      w = 0.0;
      for (const auto& [col, coeff] : q.measure_cols) {
        w += coeff * q.fact->column(col).GetNumeric(row);
      }
    }

    if (!result.grouped) {
      result.scalar += w;
      avg_rows += 1.0;
      continue;
    }
    // Assemble the group label in declared key order.
    label.clear();
    for (const auto& [dim_idx, col] : q.group_key_layout) {
      if (!label.empty()) label += kGroupKeyDelimiter;
      if (dim_idx < 0) {
        label += RenderCell(q.fact->column(col), row);
      } else {
        const query::DimBinding& d = q.dims[static_cast<size_t>(dim_idx)];
        label += RenderCell(d.dim->column(col),
                            matched[static_cast<size_t>(dim_idx)]->row);
      }
    }
    result.groups[label] += w;
    if (is_avg) group_rows[label] += 1.0;
  }

  if (is_avg) {
    if (!result.grouped) {
      result.scalar = avg_rows > 0.0 ? result.scalar / avg_rows : 0.0;
    } else {
      for (auto& [label_key, sum] : result.groups) {
        sum /= group_rows[label_key];  // every group has ≥ 1 row
      }
    }
  }
  return result;
}

// ------------------------------------------------------------------------
// Vectorized, morsel-parallel pipeline.
// ------------------------------------------------------------------------

// Verdict payload stored in each dimension's KeyIndex: values >= 0 mean the
// dimension row passes its predicates and carries that group ordinal (0 when
// the dimension has no GROUP BY columns); kFailVerdict means present-but-
// filtered; KeyIndex::kAbsent (from the probe) means referential miss.
constexpr int32_t kFailVerdict = -1;

struct VecDim {
  KeyIndex index;
  /// ordinal → representative dimension row (for label rendering).
  std::vector<int64_t> rep_rows;
  /// GroupCodeLayout field of this dimension, -1 when it has no group cols.
  int field = -1;
  const int64_t* fk = nullptr;  // fact-side foreign key data
};

// One group-key part in declared order.
struct GroupPart {
  int dim_idx = -1;  // -1 = fact column
  int col = -1;
  int field = -1;          // layout field (fact parts get their own field)
  bool is_string = false;  // fact parts: dictionary-coded column
  int64_t base = 0;        // fact int64 parts: ordinal = value - base
  const int64_t* i64 = nullptr;  // fact int64 parts: column data
  const int32_t* code = nullptr;  // fact string parts: dictionary codes
};

// Raw value of a dimension group-by cell as an exact int64 (doubles keyed by
// bit pattern — distinct bit patterns get distinct ordinals, which renders at
// least as finely as the legacy per-row labels; identical labels merge when
// rendered).
int64_t CellKey(const storage::Column& col, int64_t row) {
  switch (col.type()) {
    case storage::ValueType::kInt64:
      return col.GetInt64(row);
    case storage::ValueType::kString:
      return col.GetStringCode(row);
    case storage::ValueType::kDouble: {
      double d = col.GetDouble(row);
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
      std::memcpy(&bits, &d, sizeof(bits));
      return bits;
    }
  }
  return 0;
}

// Builds one dimension's verdict index: per-row predicate pass and, when the
// dimension contributes group keys, a dense ordinal per distinct group-column
// value combination (first-occurrence order, so ordinals are deterministic).
Result<VecDim> BuildVecDim(const query::DimBinding& d,
                           const std::vector<query::BoundPredicate>& preds,
                           const std::vector<int>& group_cols) {
  std::vector<std::vector<int64_t>> ordinals(preds.size());
  for (size_t p = 0; p < preds.size(); ++p) {
    if (preds[p].column_index < 0 ||
        preds[p].column_index >= d.dim->schema().num_fields()) {
      return Status::InvalidArgument("predicate has bad column index");
    }
    DPSTARJ_ASSIGN_OR_RETURN(
        ordinals[p],
        ComputeDomainIndexes(d.dim->column(preds[p].column_index),
                             preds[p].domain));
  }

  const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
  VecDim vd;
  std::vector<int32_t> verdicts(keys.size());
  std::map<std::vector<int64_t>, int32_t> ordinal_of;  // group combo → ordinal
  std::vector<int64_t> combo(group_cols.size());
  for (size_t r = 0; r < keys.size(); ++r) {
    bool pass = true;
    for (size_t p = 0; p < preds.size() && pass; ++p) {
      pass = ordinals[p][r] >= 0 && preds[p].Matches(ordinals[p][r]);
    }
    if (!pass) {
      verdicts[r] = kFailVerdict;
      continue;
    }
    int32_t ordinal = 0;
    if (!group_cols.empty()) {
      for (size_t c = 0; c < group_cols.size(); ++c) {
        combo[c] = CellKey(d.dim->column(group_cols[c]),
                           static_cast<int64_t>(r));
      }
      auto [it, inserted] = ordinal_of.emplace(
          combo, static_cast<int32_t>(vd.rep_rows.size()));
      if (inserted) vd.rep_rows.push_back(static_cast<int64_t>(r));
      ordinal = it->second;
    }
    verdicts[r] = ordinal;
  }
  auto built = KeyIndex::Build(keys, verdicts);
  if (!built.ok()) {
    return Status::InvalidArgument(
        Format("duplicate primary key in dimension '%s': %s", d.table.c_str(),
               built.status().message().c_str()));
  }
  vd.index = std::move(*built);
  return vd;
}

struct ScanPartial {
  double scalar = 0.0;
  int64_t rows = 0;
  std::unique_ptr<GroupAccumulator> groups;
  int64_t error_row = -1;  // first strict-integrity violation in scan order
  int error_dim = -1;
};

// Workers bump scalar/rows on every passing chunk, so each role's partial
// gets its own cache line (see CacheAligned in exec/parallel.h).
using ScanPartials = std::vector<CacheAligned<ScanPartial>>;

// True when bits [0, rows) are all set — a rebuilt predicate bitmap that
// passes every real dimension row. Together with PlanDim::has_absent_fk ==
// false this proves the dimension cannot reject any fact row, so the sweep
// skips its gathers entirely (fully-open predicates are the steady state of
// PM perturbation over wide domains). The check is ISA-independent, so
// scalar and AVX2 executions still take identical code paths.
bool BitmapPassesAllRows(const std::vector<uint64_t>& words, int32_t rows) {
  const int64_t full = rows >> 6;
  for (int64_t w = 0; w < full; ++w) {
    if (words[static_cast<size_t>(w)] != ~uint64_t{0}) return false;
  }
  const int tail = rows & 63;
  if (tail == 0) return true;
  const uint64_t need = ~uint64_t{0} >> (64 - tail);
  return (words[static_cast<size_t>(full)] & need) == need;
}

// First strict-integrity violation across workers (scan order), or row -1.
std::pair<int64_t, int> FirstStrictError(const ScanPartials& partials) {
  int64_t error_row = -1;
  int error_dim = -1;
  for (const auto& slot : partials) {
    const ScanPartial& p = slot.value;
    if (p.error_row >= 0 && (error_row < 0 || p.error_row < error_row)) {
      error_row = p.error_row;
      error_dim = p.error_dim;
    }
  }
  return {error_row, error_dim};
}

Status StrictErrorStatus(const query::BoundQuery& q, int64_t error_row,
                         int error_dim) {
  int64_t key = q.fact->column(q.dims[static_cast<size_t>(error_dim)].fact_fk_col)
                    .int64_data()[static_cast<size_t>(error_row)];
  return Status::InvalidArgument(
      Format("fact row %lld: foreign key %lld misses dimension '%s'",
             static_cast<long long>(error_row), static_cast<long long>(key),
             q.dims[static_cast<size_t>(error_dim)].table.c_str()));
}

// Folds worker partials of a non-grouped scan, in worker order.
QueryResult FinalizeScalar(const ScanPartials& partials, bool is_avg) {
  QueryResult result;
  double scalar = 0.0;
  int64_t rows = 0;
  for (const auto& slot : partials) {
    scalar += slot.value.scalar;
    rows += slot.value.rows;
  }
  result.scalar =
      is_avg ? (rows > 0 ? scalar / static_cast<double>(rows) : 0.0) : scalar;
  return result;
}

// Renders labels once per group and merges by label (distinct codes can
// render identically, e.g. two doubles formatting the same) — exactly the
// legacy per-row semantics. `rep_rows[dim]` maps a dimension's group ordinal
// to a representative dimension row.
QueryResult RenderGroupedResult(
    const query::BoundQuery& q, const GroupCodeLayout& layout,
    const std::vector<PlanLabelPart>& parts,
    const std::vector<const std::vector<int64_t>*>& rep_rows,
    const GroupAccumulator& merged, bool is_avg) {
  QueryResult result;
  result.grouped = true;
  std::map<std::string, GroupAgg> by_label;
  std::string label;
  merged.ForEach([&](uint64_t code, const GroupAgg& agg) {
    label.clear();
    for (const auto& part : parts) {
      if (!label.empty()) label += kGroupKeyDelimiter;
      if (part.dim_idx >= 0) {
        uint64_t ordinal = layout.Extract(code, part.field);
        const query::DimBinding& d = q.dims[static_cast<size_t>(part.dim_idx)];
        label += RenderCell(
            d.dim->column(part.col),
            (*rep_rows[static_cast<size_t>(part.dim_idx)])[ordinal]);
      } else if (part.is_string) {
        label += q.fact->column(part.col).dictionary()->At(
            static_cast<int32_t>(layout.Extract(code, part.field)));
      } else {
        label += std::to_string(
            part.base + static_cast<int64_t>(layout.Extract(code, part.field)));
      }
    }
    GroupAgg& slot = by_label[label];
    slot.sum += agg.sum;
    slot.rows += agg.rows;
  });
  for (const auto& [label_key, agg] : by_label) {
    result.groups[label_key] =
        is_avg ? agg.sum / static_cast<double>(agg.rows) : agg.sum;
  }
  return result;
}

// Resolves the worker count for a fact scan of `fact_rows` rows.
int ResolveWorkers(const ExecutorOptions& options, int64_t fact_rows) {
  return MorselPool::ResolveWorkers(options.exec_threads, options.morsel_size,
                                    fact_rows);
}

}  // namespace

QueryResult RenderPlanGroups(const query::BoundQuery& q, const ScanPlan& plan,
                             const GroupAccumulator& merged, bool is_avg) {
  std::vector<const std::vector<int64_t>*> rep_rows(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    rep_rows[i] = &plan.dims[i].rep_rows;
  }
  return RenderGroupedResult(q, plan.layout, plan.parts, rep_rows, merged,
                             is_avg);
}

Result<QueryResult> StarJoinExecutor::Execute(const query::BoundQuery& q) const {
  return Execute(q, PredicateOverrides(q.dims.size()));
}

Result<QueryResult> StarJoinExecutor::Execute(
    const query::BoundQuery& q, const PredicateOverrides& overrides) const {
  if (!overrides.empty() && overrides.size() != q.dims.size()) {
    return Status::InvalidArgument(
        Format("override arity %zu != dimension count %zu", overrides.size(),
               q.dims.size()));
  }
  if (options_.force_scalar) return ExecuteScalar(q, overrides, options_);

  const bool grouped = !q.group_key_layout.empty();

  // ---- group-code layout: one field per group-bearing dimension (covering
  // all of its key columns jointly) plus one field per fact-side key column.
  GroupCodeLayout layout;
  std::vector<GroupPart> parts;
  std::vector<std::vector<int>> dim_group_cols(q.dims.size());
  std::vector<int> dim_fields(q.dims.size(), -1);
  if (grouped) {
    parts.reserve(q.group_key_layout.size());
    for (const auto& [dim_idx, col] : q.group_key_layout) {
      GroupPart part;
      part.dim_idx = dim_idx;
      part.col = col;
      if (dim_idx >= 0) {
        dim_group_cols[static_cast<size_t>(dim_idx)].push_back(col);
      } else {
        const storage::Column& c = q.fact->column(col);
        if (c.type() == storage::ValueType::kDouble) {
          // Unbounded ordinal space; take the label-per-row pipeline.
          return ExecuteScalar(q, overrides, options_);
        }
        uint64_t cardinality = 1;
        if (c.type() == storage::ValueType::kString) {
          part.is_string = true;
          part.code = c.code_data().data();
          cardinality = static_cast<uint64_t>(
              std::max<int32_t>(c.dictionary()->size(), 1));
        } else {
          const auto& data = c.int64_data();
          part.i64 = data.data();
          if (!data.empty()) {
            auto [lo, hi] = std::minmax_element(data.begin(), data.end());
            part.base = *lo;
            uint64_t range =
                static_cast<uint64_t>(*hi) - static_cast<uint64_t>(*lo);
            if (range >= (uint64_t{1} << 62)) {
              return ExecuteScalar(q, overrides, options_);
            }
            cardinality = range + 1;
          }
        }
        part.field = layout.AddField(cardinality);
      }
      parts.push_back(part);
    }
  }

  // ---- per-dimension verdict tables (predicates + group ordinals).
  std::vector<VecDim> dims(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    DPSTARJ_ASSIGN_OR_RETURN(
        dims[i], BuildVecDim(q.dims[i], *EffectivePreds(q, overrides, i),
                             dim_group_cols[i]));
    dims[i].fk = q.fact->column(q.dims[i].fact_fk_col).int64_data().data();
    if (!dim_group_cols[i].empty()) {
      dim_fields[i] = layout.AddField(
          std::max<uint64_t>(dims[i].rep_rows.size(), 1));
      dims[i].field = dim_fields[i];
    }
  }
  if (grouped) {
    for (auto& part : parts) {
      if (part.dim_idx >= 0) {
        part.field = dim_fields[static_cast<size_t>(part.dim_idx)];
      }
    }
    if (!layout.Fits()) {
      // Code space exceeds 64 bits; take the label-per-row pipeline.
      return ExecuteScalar(q, overrides, options_);
    }
  }
  const std::optional<uint64_t> code_space = layout.CodeSpace();

  // ---- measure spans, hoisted out of the scan.
  std::vector<std::pair<storage::Column::NumericView, double>> measures;
  measures.reserve(q.measure_cols.size());
  for (const auto& [col, coeff] : q.measure_cols) {
    measures.emplace_back(q.fact->column(col).numeric_view(), coeff);
  }

  // ---- the morsel-parallel fact scan.
  const int64_t fact_rows = q.fact->num_rows();
  const int num_workers = ResolveWorkers(options_, fact_rows);
  const size_t num_dims = q.dims.size();
  const bool strict = options_.strict_integrity;
  ScanPartials partials(static_cast<size_t>(num_workers));
  if (grouped) {
    // Bound each worker's dense table by the rows it will actually scan: a
    // flat vector much larger than the touched code count is pure memset.
    const uint64_t dense_limit =
        static_cast<uint64_t>(fact_rows / num_workers) * 4 + 1024;
    for (auto& p : partials) {
      p.value.groups = std::make_unique<GroupAccumulator>(code_space, dense_limit);
    }
  }

  auto scan = [&](int worker, int64_t begin, int64_t end) {
    ScanPartial& p = partials[static_cast<size_t>(worker)].value;
    if (p.error_row >= 0) return;  // this worker already hit a strict error
    for (int64_t row = begin; row < end; ++row) {
      uint64_t code = 0;
      bool pass = true;
      for (size_t i = 0; i < num_dims; ++i) {
        const VecDim& vd = dims[i];
        int32_t verdict = vd.index.Lookup(vd.fk[row]);
        if (verdict >= 0) {
          if (vd.field >= 0) {
            code |= layout.Pack(vd.field, static_cast<uint64_t>(verdict));
          }
          continue;
        }
        if (verdict == KeyIndex::kAbsent && strict) {
          p.error_row = row;
          p.error_dim = static_cast<int>(i);
          return;
        }
        pass = false;
        break;
      }
      if (!pass) continue;

      double w = 1.0;
      if (!measures.empty()) {
        w = 0.0;
        for (const auto& [view, coeff] : measures) w += coeff * view[row];
      }
      if (!grouped) {
        p.scalar += w;
        p.rows += 1;
        continue;
      }
      for (const auto& part : parts) {
        if (part.dim_idx >= 0) continue;  // dim ordinals packed above
        uint64_t ordinal =
            part.is_string
                ? static_cast<uint64_t>(part.code[row])
                : static_cast<uint64_t>(part.i64[row] - part.base);
        code |= layout.Pack(part.field, ordinal);
      }
      p.groups->Add(code, w);
    }
  };
  MorselPool::Shared().Run(num_workers, fact_rows, options_.morsel_size, scan);

  // ---- deterministic merge, in worker order.
  if (strict) {
    auto [error_row, error_dim] = FirstStrictError(partials);
    if (error_row >= 0) return StrictErrorStatus(q, error_row, error_dim);
  }

  const bool is_avg = q.query.aggregate == query::AggregateKind::kAvg;
  if (!grouped) return FinalizeScalar(partials, is_avg);

  GroupAccumulator& merged = *partials[0].value.groups;
  for (size_t i = 1; i < partials.size(); ++i) {
    merged.MergeFrom(*partials[i].value.groups);
  }

  std::vector<PlanLabelPart> render_parts;
  render_parts.reserve(parts.size());
  for (const auto& part : parts) {
    PlanLabelPart rp;
    rp.dim_idx = part.dim_idx;
    rp.col = part.col;
    rp.field = part.field;
    rp.is_string = part.is_string;
    rp.base = part.base;
    render_parts.push_back(rp);
  }
  std::vector<const std::vector<int64_t>*> rep_rows(num_dims);
  for (size_t i = 0; i < num_dims; ++i) rep_rows[i] = &dims[i].rep_rows;
  return RenderGroupedResult(q, layout, render_parts, rep_rows, merged, is_avg);
}

Result<QueryResult> StarJoinExecutor::Execute(const query::BoundQuery& q,
                                              const PredicateOverrides& overrides,
                                              const ScanPlan& plan,
                                              obs::Trace* trace) const {
  if (!overrides.empty() && overrides.size() != q.dims.size()) {
    return Status::InvalidArgument(
        Format("override arity %zu != dimension count %zu", overrides.size(),
               q.dims.size()));
  }
  // Plans carry no scaffold when grouping cannot pack into 64 bits; the
  // scalar pipeline re-derives everything from the query each run.
  if (options_.force_scalar || plan.requires_scalar()) {
    obs::ScopedStage scan_span(trace, obs::Stage::kScan);
    return ExecuteScalar(q, overrides, options_);
  }
  if (!plan.Matches(q)) {
    return Status::InvalidArgument(
        "scan plan is stale for this query (a table changed since compile); "
        "recompile via PlanCache::GetOrCompile");
  }

  const size_t num_dims = q.dims.size();
  const bool grouped = plan.grouped;

  // ---- the cheap per-execution part: one predicate bitmap per dimension.
  std::vector<std::vector<uint64_t>> bitmaps(num_dims);
  {
    obs::ScopedStage bitmap_span(trace, obs::Stage::kBitmapRebuild);
    for (size_t i = 0; i < num_dims; ++i) {
      DPSTARJ_ASSIGN_OR_RETURN(
          bitmaps[i], BuildPassBitmap(plan.dims[i], *q.dims[i].dim,
                                      *EffectivePreds(q, overrides, i)));
    }
  }
  // Everything below is the fact sweep (run-sorted or probing) + merge.
  obs::ScopedStage scan_span(trace, obs::Stage::kScan);

  const int64_t fact_rows = plan.fact_rows();
  const int num_workers = ResolveWorkers(options_, fact_rows);
  const bool strict = options_.strict_integrity;
  const bool is_avg = q.query.aggregate == query::AggregateKind::kAvg;

  // ---- run-sorted fast path (grouped, dense code space, non-strict): sweep
  // each group's pre-partitioned run once and emit a single aggregate into
  // its pre-rendered label slot — sequential reads, no random accumulator
  // traffic, and no string work at all. Per-group sums associate in row
  // order, so results are identical at every worker count for exact
  // aggregates and reproducible for inexact ones.
  if (grouped && plan.has_sorted_runs && !strict) {
    const int64_t code_space = static_cast<int64_t>(*plan.code_space);
    const size_t num_labels = plan.group_labels.size();
    const int64_t* offsets = plan.run_offsets.data();
    const int32_t* label_of = plan.label_of_code.data();
    const double* sorted_w =
        plan.sorted_weights.empty() ? nullptr : plan.sorted_weights.data();
    // Only dimensions that can actually reject a fact row take part in the
    // verdict gather (see BitmapPassesAllRows).
    std::vector<const int32_t*> sorted_rows;
    std::vector<const uint64_t*> words;
    for (size_t i = 0; i < num_dims; ++i) {
      if (!plan.dims[i].has_absent_fk &&
          BitmapPassesAllRows(bitmaps[i], plan.dims[i].num_rows)) {
        continue;
      }
      sorted_rows.push_back(plan.sorted_dim_row[i].data());
      words.push_back(bitmaps[i].data());
    }
    const size_t active_dims = sorted_rows.size();
    // Workers are sized by the real work — the fact rows inside the runs —
    // then clamped to the number of code morsels actually available.
    const int64_t code_morsel = std::max<int64_t>(
        code_space / (int64_t{std::max(num_workers, 1)} * 8) + 1, 64);
    const int64_t code_morsels = (code_space + code_morsel - 1) / code_morsel;
    const int sweep_workers = static_cast<int>(std::min<int64_t>(
        std::max(num_workers, 1), std::max<int64_t>(code_morsels, 1)));
    std::vector<std::vector<GroupAgg>> label_partials(
        static_cast<size_t>(sweep_workers), std::vector<GroupAgg>(num_labels));
    // The sweep dispatches through the kernel layer in ≤64-row chunks: one
    // pass_mask gather-AND per chunk, popcount for the row count, and a wide
    // contiguous accumulate (sum_span) when every row in the chunk passed —
    // the common case for selective-on-few-dims queries — falling back to a
    // set-bit walk for sparse chunks.
    const auto& kern = kernels::ActiveKernels();
    const int32_t* const* srows = sorted_rows.data();
    const uint64_t* const* wptrs = words.data();
    auto sweep = [&](int worker, int64_t code_begin, int64_t code_end) {
      std::vector<GroupAgg>& aggs = label_partials[static_cast<size_t>(worker)];
      for (int64_t code = code_begin; code < code_end; ++code) {
        const int64_t begin = offsets[code];
        const int64_t end = offsets[code + 1];
        if (begin == end) continue;
        double sum = 0.0;
        int64_t rows = 0;
        if (active_dims == 0) {
          // Every row of the run passes: one wide accumulate, no gathers.
          rows = end - begin;
          if (sorted_w != nullptr) sum = kern.sum_span(sorted_w + begin, rows);
        } else {
          for (int64_t j = begin; j < end; j += 64) {
            const int nbits = static_cast<int>(std::min<int64_t>(64, end - j));
            const uint64_t mask =
                kern.pass_mask(srows, wptrs, active_dims, j, nbits);
            if (mask == 0) continue;
            const int hits = __builtin_popcountll(mask);
            rows += hits;
            if (sorted_w == nullptr) continue;  // COUNT: popcount is enough
            sum += hits == nbits
                       ? kern.sum_span(sorted_w + j, nbits)
                       : kernels::SumMaskedAscending(sorted_w, j, mask);
          }
        }
        if (rows > 0) {
          GroupAgg& agg = aggs[static_cast<size_t>(label_of[code])];
          agg.sum += sorted_w != nullptr ? sum : static_cast<double>(rows);
          agg.rows += rows;
        }
      }
    };
    MorselPool::Shared().Run(sweep_workers, code_space, code_morsel, sweep);

    // Labels are pre-sorted, so the result map builds in O(groups) with an
    // end hint instead of O(groups log groups) comparisons.
    QueryResult result;
    result.grouped = true;
    for (size_t li = 0; li < num_labels; ++li) {
      GroupAgg total;
      for (const auto& aggs : label_partials) {  // worker order: deterministic
        total.sum += aggs[li].sum;
        total.rows += aggs[li].rows;
      }
      if (total.rows == 0) continue;
      result.groups.emplace_hint(
          result.groups.end(), plan.group_labels[li],
          is_avg ? total.sum / static_cast<double>(total.rows) : total.sum);
    }
    return result;
  }

  ScanPartials partials(static_cast<size_t>(num_workers));
  if (grouped) {
    const uint64_t dense_limit =
        static_cast<uint64_t>(fact_rows / num_workers) * 4 + 1024;
    for (auto& p : partials) {
      p.value.groups =
          std::make_unique<GroupAccumulator>(plan.code_space, dense_limit);
    }
  }

  std::vector<const int32_t*> dim_rows(num_dims);
  std::vector<const uint64_t*> pass_words(num_dims);
  std::vector<int32_t> sentinels(num_dims);
  for (size_t i = 0; i < num_dims; ++i) {
    dim_rows[i] = plan.fact_dim_row[i].data();
    pass_words[i] = bitmaps[i].data();
    sentinels[i] = plan.dims[i].num_rows;
  }
  // The non-strict sweep only gathers dimensions that can reject a row
  // (BitmapPassesAllRows); strict mode keeps the full set because it must
  // report the exact (row, dimension) of an integrity violation.
  std::vector<const int32_t*> active_rows;
  std::vector<const uint64_t*> active_words;
  for (size_t i = 0; i < num_dims; ++i) {
    if (!plan.dims[i].has_absent_fk &&
        BitmapPassesAllRows(bitmaps[i], plan.dims[i].num_rows)) {
      continue;
    }
    active_rows.push_back(dim_rows[i]);
    active_words.push_back(pass_words[i]);
  }
  const size_t active_dims = active_rows.size();
  const uint64_t* codes = plan.codes.data();
  const double* weights = plan.weights.empty() ? nullptr : plan.weights.data();

  // The scan is pure gathers: resolved dimension rows index into the pass
  // bitmaps (an absent FK hits the sentinel bit, which is always 0), and the
  // group code and weight are pre-packed per row. Strict mode takes a
  // separate branchy loop because it must distinguish "absent" from
  // "filtered" at the exact (row, dimension) the fresh pipeline would.
  auto scan = [&](int worker, int64_t begin, int64_t end) {
    ScanPartial& p = partials[static_cast<size_t>(worker)].value;
    if (p.error_row >= 0) return;
    if (strict) {
      for (int64_t row = begin; row < end; ++row) {
        bool pass = true;
        for (size_t i = 0; i < num_dims; ++i) {
          int32_t dr = dim_rows[i][row];
          if (dr == sentinels[i]) {
            p.error_row = row;
            p.error_dim = static_cast<int>(i);
            return;
          }
          if (((pass_words[i][dr >> 6] >> (dr & 63)) & 1) == 0) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        const double w = weights != nullptr ? weights[row] : 1.0;
        if (!grouped) {
          p.scalar += w;
          p.rows += 1;
        } else {
          p.groups->Add(codes[row], w);
        }
      }
      return;
    }
    // Non-strict probing sweep: ≤64-row chunks through the kernel layer.
    // Scalar aggregates take popcount + wide sums; grouped aggregates must
    // touch the accumulator per row, so they walk the mask's set bits (the
    // verdict gather is still vectorized).
    const auto& kern = kernels::ActiveKernels();
    if (active_dims == 0 && !grouped) {
      // Nothing can reject a row: the whole morsel aggregates wide.
      p.rows += end - begin;
      p.scalar += weights != nullptr
                      ? kern.sum_span(weights + begin, end - begin)
                      : static_cast<double>(end - begin);
      return;
    }
    for (int64_t row = begin; row < end; row += 64) {
      const int nbits = static_cast<int>(std::min<int64_t>(64, end - row));
      const uint64_t mask =
          nbits == 64 && active_dims == 0
              ? ~uint64_t{0}
              : kern.pass_mask(active_rows.data(), active_words.data(),
                               active_dims, row, nbits);
      if (mask == 0) continue;
      if (!grouped) {
        const int hits = __builtin_popcountll(mask);
        p.rows += hits;
        if (weights == nullptr) {
          p.scalar += static_cast<double>(hits);
        } else {
          p.scalar += hits == nbits
                          ? kern.sum_span(weights + row, nbits)
                          : kernels::SumMaskedAscending(weights, row, mask);
        }
        continue;
      }
      uint64_t m = mask;
      while (m != 0) {
        const int bit = __builtin_ctzll(m);
        m &= m - 1;
        const int64_t r = row + bit;
        p.groups->Add(codes[r], weights != nullptr ? weights[r] : 1.0);
      }
    }
  };
  MorselPool::Shared().Run(num_workers, fact_rows, options_.morsel_size, scan);

  if (strict) {
    auto [error_row, error_dim] = FirstStrictError(partials);
    if (error_row >= 0) return StrictErrorStatus(q, error_row, error_dim);
  }

  if (!grouped) return FinalizeScalar(partials, is_avg);

  GroupAccumulator& merged = *partials[0].value.groups;
  for (size_t i = 1; i < partials.size(); ++i) {
    merged.MergeFrom(*partials[i].value.groups);
  }
  return RenderPlanGroups(q, plan, merged, is_avg);
}

}  // namespace dpstarj::exec
