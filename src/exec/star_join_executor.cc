#include "exec/star_join_executor.h"

#include <unordered_map>

#include "common/string_util.h"
#include "exec/domain_index.h"

namespace dpstarj::exec {

namespace {

/// Per-dimension hash table entry: predicate verdict and the dimension row
/// (needed only when the dimension contributes GROUP BY keys).
struct DimEntry {
  bool pass = true;
  int64_t row = -1;
};

struct DimState {
  std::unordered_map<int64_t, DimEntry> by_key;
  bool has_group_cols = false;
};

// Renders one group-key part from a column cell.
std::string RenderCell(const storage::Column& col, int64_t row) {
  return col.GetValue(row).ToString();
}

}  // namespace

Result<QueryResult> StarJoinExecutor::Execute(const query::BoundQuery& q) const {
  return Execute(q, PredicateOverrides(q.dims.size()));
}

Result<QueryResult> StarJoinExecutor::Execute(const query::BoundQuery& q,
                                              const PredicateOverrides& overrides) const {
  if (!overrides.empty() && overrides.size() != q.dims.size()) {
    return Status::InvalidArgument(
        Format("override arity %zu != dimension count %zu", overrides.size(),
               q.dims.size()));
  }

  // Build one hash table per dimension.
  std::vector<DimState> states(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    const query::DimBinding& d = q.dims[i];
    DimState& st = states[i];
    st.has_group_cols = !d.group_by_cols.empty();

    const std::vector<query::BoundPredicate>* preds = &d.predicates;
    if (!overrides.empty() && overrides[i].has_value()) {
      preds = &*overrides[i];
    }

    // Per-predicate domain ordinals of the filtered column.
    std::vector<std::vector<int64_t>> ordinals(preds->size());
    for (size_t p = 0; p < preds->size(); ++p) {
      const query::BoundPredicate& pred = (*preds)[p];
      if (pred.column_index < 0 ||
          pred.column_index >= d.dim->schema().num_fields()) {
        return Status::InvalidArgument("predicate has bad column index");
      }
      DPSTARJ_ASSIGN_OR_RETURN(
          ordinals[p],
          ComputeDomainIndexes(d.dim->column(pred.column_index), pred.domain));
    }

    const auto& keys = d.dim->column(d.dim_pk_col).int64_data();
    st.by_key.reserve(keys.size() * 2);
    for (size_t r = 0; r < keys.size(); ++r) {
      DimEntry e;
      e.row = static_cast<int64_t>(r);
      for (size_t p = 0; p < preds->size() && e.pass; ++p) {
        int64_t ord = ordinals[p][r];
        e.pass = (ord >= 0) && (*preds)[p].Matches(ord);
      }
      auto [it, inserted] = st.by_key.emplace(keys[r], e);
      if (!inserted) {
        return Status::InvalidArgument(
            Format("duplicate primary key %lld in dimension '%s'",
                   static_cast<long long>(keys[r]), d.table.c_str()));
      }
    }
  }

  QueryResult result;
  result.grouped = !q.group_key_layout.empty();
  const bool is_avg = q.query.aggregate == query::AggregateKind::kAvg;
  double avg_rows = 0.0;
  std::map<std::string, double> group_rows;

  const int64_t fact_rows = q.fact->num_rows();
  // Resolve fk column data pointers once.
  std::vector<const std::vector<int64_t>*> fk_data(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    fk_data[i] = &q.fact->column(q.dims[i].fact_fk_col).int64_data();
  }

  std::vector<const DimEntry*> matched(q.dims.size());
  std::string label;
  for (int64_t row = 0; row < fact_rows; ++row) {
    bool pass = true;
    for (size_t i = 0; i < q.dims.size(); ++i) {
      int64_t key = (*fk_data[i])[static_cast<size_t>(row)];
      auto it = states[i].by_key.find(key);
      if (it == states[i].by_key.end()) {
        if (options_.strict_integrity) {
          return Status::InvalidArgument(
              Format("fact row %lld: foreign key %lld misses dimension '%s'",
                     static_cast<long long>(row), static_cast<long long>(key),
                     q.dims[i].table.c_str()));
        }
        pass = false;
        break;
      }
      if (!it->second.pass) {
        pass = false;
        break;
      }
      matched[i] = &it->second;
    }
    if (!pass) continue;

    double w = 1.0;
    if (!q.measure_cols.empty()) {
      w = 0.0;
      for (const auto& [col, coeff] : q.measure_cols) {
        w += coeff * q.fact->column(col).GetNumeric(row);
      }
    }

    if (!result.grouped) {
      result.scalar += w;
      avg_rows += 1.0;
      continue;
    }
    // Assemble the group label in declared key order.
    label.clear();
    for (const auto& [dim_idx, col] : q.group_key_layout) {
      if (!label.empty()) label += kGroupKeyDelimiter;
      if (dim_idx < 0) {
        label += RenderCell(q.fact->column(col), row);
      } else {
        const query::DimBinding& d = q.dims[static_cast<size_t>(dim_idx)];
        label += RenderCell(d.dim->column(col),
                            matched[static_cast<size_t>(dim_idx)]->row);
      }
    }
    result.groups[label] += w;
    if (is_avg) group_rows[label] += 1.0;
  }

  if (is_avg) {
    if (!result.grouped) {
      result.scalar = avg_rows > 0.0 ? result.scalar / avg_rows : 0.0;
    } else {
      for (auto& [label_key, sum] : result.groups) {
        sum /= group_rows[label_key];  // every group has ≥ 1 row
      }
    }
  }
  return result;
}

}  // namespace dpstarj::exec
