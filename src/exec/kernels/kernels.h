// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Runtime-dispatched SIMD kernels for the engine's four hot loops:
//
//   range_bitmap_and      predicate compare → 64-bit bitmap pack over a
//                         memoized domain-ordinal span (scan_plan.cc,
//                         BuildPassBitmap);
//   pass_mask             the per-row verdict gather of the warm fact sweep:
//                         for ≤ 64 rows, gather each dimension's resolved row
//                         into its predicate bitmap and AND the bits into one
//                         mask word (star_join_executor.cc plan paths);
//   sum_span              contiguous double accumulation in a FIXED four-lane
//                         split (see below), used for all-pass chunks of the
//                         per-run gather/accumulate (32-byte-wide loads over
//                         NumericView-backed weight spans);
//   byte_gather_transpose the workload plan's per-slot verdict gather: pull
//                         ≤ 64 byte-wide verdict words and transpose bit k of
//                         every byte into node k's packed verdict word
//                         (workload_plan.cc).
//
// Dispatch is decided ONCE at startup from CPUID (common/cpu.h): AVX2 when
// the host executes it, the portable scalar implementations otherwise.
// DPSTARJ_FORCE_SCALAR=1 in the environment forces the scalar table (the CI
// forced-scalar jobs run the whole suite this way), and tests can inject
// either table with ScopedKernelOverride.
//
// Equivalence contract: for identical inputs, the scalar and AVX2
// implementations of every kernel return BYTE-IDENTICAL results — bitmap
// kernels are exact by construction, and sum_span pins the floating-point
// association order to a four-lane split (lane j accumulates elements
// j, j+4, j+8, ..., lanes combine as (l0+l1)+(l2+l3)) that both
// implementations follow instruction-for-instruction. A query answer
// therefore never depends on the ISA the host happens to have
// (tests/kernels_test.cc fuzzes this contract).

#pragma once

#include <cstddef>
#include <cstdint>

namespace dpstarj::exec::kernels {

struct EngineKernels {
  /// "scalar" or "avx2" — surfaced in bench host fields and /metrics-adjacent
  /// diagnostics.
  const char* name;

  /// ANDs (or stores, when `first`) the packed compare bits of
  /// `ordinals[r] ∈ [lo, hi]` for r in [0, rows) into `words`. Bits at and
  /// past `rows` (the absent-FK sentinel and the tail) are left untouched on
  /// AND and stored as 0 on first store, so callers' sentinel-bit invariant
  /// holds.
  void (*range_bitmap_and)(const int64_t* ordinals, int64_t rows, int64_t lo,
                           int64_t hi, bool first, uint64_t* words);

  /// Pass mask of rows [base, base + nbits), nbits ≤ 64: bit i =
  /// AND over d of bitmap_words[d] bit dim_rows[d][base + i]. Absent FKs
  /// resolve to the sentinel row, whose bitmap bit is always 0. Bits ≥ nbits
  /// are 0.
  uint64_t (*pass_mask)(const int32_t* const* dim_rows,
                        const uint64_t* const* bitmap_words, size_t num_dims,
                        int64_t base, int nbits);

  /// Sum of w[0..n) in the fixed four-lane association order documented
  /// above. NOT sequential-order addition: both implementations reassociate
  /// identically, so the result is ISA-independent (and differs from a naive
  /// running sum only by normal floating-point rounding).
  double (*sum_span)(const double* w, int64_t n);

  /// Gathers table[rows[i]] for i in [0, len), len ≤ 64, and writes the
  /// packed word of bit k across the gathered bytes into out[k] for each
  /// k in [0, nn), nn ≤ 8. Bits ≥ len are 0.
  void (*byte_gather_transpose)(const uint8_t* table, const int32_t* rows,
                                int len, size_t nn, uint64_t* out);
};

/// The portable reference implementations (always available).
const EngineKernels& ScalarKernels();

/// The AVX2 implementations, or nullptr when the build target or the host
/// CPU cannot execute them.
const EngineKernels* Avx2KernelsOrNull();

/// \brief The table the engine dispatches through, chosen once: a test
/// override if active, else scalar when DPSTARJ_FORCE_SCALAR=1 was set at
/// first use, else AVX2 when the host supports it, else scalar. Callers
/// hoist the reference out of their loops; the indirect call is per-chunk,
/// not per-row.
const EngineKernels& ActiveKernels();

/// \brief RAII kernel-table injection for tests (not thread-safe against
/// concurrent scans — install before spawning work). Passing nullptr
/// restores normal dispatch for the scope instead of overriding.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const EngineKernels* kernels);
  ~ScopedKernelOverride();

  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const EngineKernels* previous_;
};

/// \brief Sums the weights of `mask`'s set bits in ascending bit order:
/// the sparse-mask companion of sum_span, shared by all callers (kept
/// scalar — extraction order, not arithmetic, dominates sparse chunks).
inline double SumMaskedAscending(const double* w, int64_t base, uint64_t mask) {
  double sum = 0.0;
  while (mask != 0) {
    const int bit = __builtin_ctzll(mask);
    mask &= mask - 1;
    sum += w[base + bit];
  }
  return sum;
}

}  // namespace dpstarj::exec::kernels
