#include "exec/kernels/kernels.h"

#include <atomic>
#include <cstdlib>

#include "common/cpu.h"

namespace dpstarj::exec::kernels {

namespace scalar {

void RangeBitmapAnd(const int64_t* ordinals, int64_t rows, int64_t lo,
                    int64_t hi, bool first, uint64_t* words) {
  const int64_t full_words = rows >> 6;
  for (int64_t wi = 0; wi < full_words; ++wi) {
    const int64_t* o = ordinals + (wi << 6);
    uint64_t bits = 0;
    for (int i = 0; i < 64; ++i) {
      bits |= static_cast<uint64_t>((o[i] >= lo) & (o[i] <= hi))
              << static_cast<unsigned>(i);
    }
    if (first) {
      words[wi] = bits;
    } else {
      words[wi] &= bits;
    }
  }
  const int tail = static_cast<int>(rows & 63);
  if (tail > 0) {
    const int64_t* o = ordinals + (full_words << 6);
    uint64_t bits = 0;
    for (int i = 0; i < tail; ++i) {
      bits |= static_cast<uint64_t>((o[i] >= lo) & (o[i] <= hi))
              << static_cast<unsigned>(i);
    }
    if (first) {
      words[full_words] = bits;
    } else {
      words[full_words] &= bits | (~uint64_t{0} << tail);
    }
  }
}

uint64_t PassMask(const int32_t* const* dim_rows,
                  const uint64_t* const* bitmap_words, size_t num_dims,
                  int64_t base, int nbits) {
  uint64_t mask = 0;
  for (int i = 0; i < nbits; ++i) {
    uint64_t ok = 1;
    for (size_t d = 0; d < num_dims; ++d) {
      const int32_t dr = dim_rows[d][base + i];
      ok &= bitmap_words[d][dr >> 6] >> (dr & 63);
    }
    mask |= (ok & 1) << static_cast<unsigned>(i);
  }
  return mask;
}

double SumSpan(const double* w, int64_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] += w[i];
    lanes[1] += w[i + 1];
    lanes[2] += w[i + 2];
    lanes[3] += w[i + 3];
  }
  for (int r = 0; i < n; ++i, ++r) lanes[r] += w[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void ByteGatherTranspose(const uint8_t* table, const int32_t* rows, int len,
                         size_t nn, uint64_t* out) {
  // SWAR bit extraction: mask bit k into each byte's LSB, then one multiply
  // shift-accumulates the eight LSBs into the top byte (little-endian).
  constexpr uint64_t kLsb8 = 0x0101010101010101ULL;
  constexpr uint64_t kGather = 0x0102040810204080ULL;
  uint64_t chunks[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  uint8_t* vbuf = reinterpret_cast<uint8_t*>(chunks);
  for (int i = 0; i < len; ++i) vbuf[i] = table[rows[i]];
  for (size_t k = 0; k < nn; ++k) {
    uint64_t bits = 0;
    for (int c = 0; c < 8; ++c) {
      bits |= ((((chunks[c] >> k) & kLsb8) * kGather) >> 56)
              << static_cast<unsigned>(8 * c);
    }
    out[k] = bits;
  }
}

}  // namespace scalar

const EngineKernels& ScalarKernels() {
  static const EngineKernels kernels = {
      "scalar",          scalar::RangeBitmapAnd, scalar::PassMask,
      scalar::SumSpan,   scalar::ByteGatherTranspose,
  };
  return kernels;
}

namespace {

std::atomic<const EngineKernels*> g_override{nullptr};

const EngineKernels* ChooseStartupKernels() {
  const char* force = std::getenv("DPSTARJ_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return &ScalarKernels();
  const EngineKernels* avx2 = Avx2KernelsOrNull();
  return avx2 != nullptr ? avx2 : &ScalarKernels();
}

}  // namespace

const EngineKernels& ActiveKernels() {
  const EngineKernels* injected = g_override.load(std::memory_order_acquire);
  if (injected != nullptr) return *injected;
  static const EngineKernels* chosen = ChooseStartupKernels();
  return *chosen;
}

ScopedKernelOverride::ScopedKernelOverride(const EngineKernels* kernels)
    : previous_(g_override.exchange(kernels, std::memory_order_acq_rel)) {}

ScopedKernelOverride::~ScopedKernelOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace dpstarj::exec::kernels
