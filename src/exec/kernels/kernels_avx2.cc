// AVX2 implementations of the engine kernels (see kernels.h for the
// contract). Every function carries the `target("avx2")` attribute instead
// of the whole TU being compiled with -mavx2: the binary stays runnable on
// any x86-64 host, and these bodies are only reachable through the dispatch
// table, which consults CPUID (common/cpu.h) before handing them out.

#include "exec/kernels/kernels.h"

#include "common/cpu.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DPSTARJ_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#endif

namespace dpstarj::exec::kernels {

#ifdef DPSTARJ_HAVE_AVX2_BUILD

namespace avx2 {

__attribute__((target("avx2"))) void RangeBitmapAnd(const int64_t* ordinals,
                                                    int64_t rows, int64_t lo,
                                                    int64_t hi, bool first,
                                                    uint64_t* words) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const int64_t full_words = rows >> 6;
  for (int64_t wi = 0; wi < full_words; ++wi) {
    const int64_t* o = ordinals + (wi << 6);
    uint64_t bits = 0;
    for (int v = 0; v < 16; ++v) {
      const __m256i vo =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o + 4 * v));
      // out-of-range = (lo > o) | (o > hi); the pass bits are its complement.
      const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, vo),
                                          _mm256_cmpgt_epi64(vo, vhi));
      const unsigned b4 = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(bad)));
      bits |= static_cast<uint64_t>(~b4 & 0xFu) << static_cast<unsigned>(4 * v);
    }
    if (first) {
      words[wi] = bits;
    } else {
      words[wi] &= bits;
    }
  }
  const int tail = static_cast<int>(rows & 63);
  if (tail > 0) {
    const int64_t* o = ordinals + (full_words << 6);
    uint64_t bits = 0;
    for (int i = 0; i < tail; ++i) {
      bits |= static_cast<uint64_t>((o[i] >= lo) & (o[i] <= hi))
              << static_cast<unsigned>(i);
    }
    if (first) {
      words[full_words] = bits;
    } else {
      words[full_words] &= bits | (~uint64_t{0} << tail);
    }
  }
}

__attribute__((target("avx2"))) uint64_t PassMask(
    const int32_t* const* dim_rows, const uint64_t* const* bitmap_words,
    size_t num_dims, int64_t base, int nbits) {
  uint64_t mask = 0;
  const __m256i v31 = _mm256_set1_epi32(31);
  int i = 0;
  for (; i + 8 <= nbits; i += 8) {
    __m256i ok = _mm256_set1_epi32(-1);
    for (size_t d = 0; d < num_dims; ++d) {
      const __m256i rows = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dim_rows[d] + base + i));
      // The uint64 bitmap reads as uint32 words on little-endian: word
      // dr >> 5, bit dr & 31 — a 32-bit gather per dimension per 8 rows.
      const __m256i w = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(bitmap_words[d]),
          _mm256_srli_epi32(rows, 5), 4);
      ok = _mm256_and_si256(ok,
                            _mm256_srlv_epi32(w, _mm256_and_si256(rows, v31)));
    }
    const unsigned m8 = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_slli_epi32(ok, 31))));
    mask |= static_cast<uint64_t>(m8) << static_cast<unsigned>(i);
  }
  for (; i < nbits; ++i) {
    uint64_t ok = 1;
    for (size_t d = 0; d < num_dims; ++d) {
      const int32_t dr = dim_rows[d][base + i];
      ok &= bitmap_words[d][dr >> 6] >> (dr & 63);
    }
    mask |= (ok & 1) << static_cast<unsigned>(i);
  }
  return mask;
}

__attribute__((target("avx2"))) double SumSpan(const double* w, int64_t n) {
  // Lane j of `acc` sees exactly the elements scalar::SumSpan's lanes[j]
  // sees, in the same order — vaddpd is lane-wise, so the two agree
  // bit-for-bit (the kernels.h equivalence contract).
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(w + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int r = 0; i < n; ++i, ++r) lanes[r] += w[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) void ByteGatherTranspose(const uint8_t* table,
                                                         const int32_t* rows,
                                                         int len, size_t nn,
                                                         uint64_t* out) {
  uint8_t vbuf[64] = {0};
  for (int i = 0; i < len; ++i) vbuf[i] = table[rows[i]];
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vbuf));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vbuf + 32));
  for (size_t k = 0; k < nn; ++k) {
    // Move bit k of every byte into the byte's sign position and let
    // vpmovmskb transpose 32 rows per instruction. The 16-bit shift cannot
    // pollute the sampled bits: bit 7 (resp. 15) of a lane shifted left by
    // s = 7-k comes from bit 7-s of the low (resp. high) byte — bit k.
    const int s = 7 - static_cast<int>(k);
    const uint32_t mlo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_slli_epi16(lo, s)));
    const uint32_t mhi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_slli_epi16(hi, s)));
    out[k] = static_cast<uint64_t>(mlo) | (static_cast<uint64_t>(mhi) << 32);
  }
}

}  // namespace avx2

const EngineKernels* Avx2KernelsOrNull() {
  if (!HostCpu().avx2) return nullptr;
  static const EngineKernels kernels = {
      "avx2",        avx2::RangeBitmapAnd, avx2::PassMask,
      avx2::SumSpan, avx2::ByteGatherTranspose,
  };
  return &kernels;
}

#else  // !DPSTARJ_HAVE_AVX2_BUILD

const EngineKernels* Avx2KernelsOrNull() { return nullptr; }

#endif

}  // namespace dpstarj::exec::kernels
