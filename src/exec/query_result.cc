#include "exec/query_result.h"

#include "common/math_util.h"
#include "common/string_util.h"

namespace dpstarj::exec {

double QueryResult::Total() const {
  if (!grouped) return scalar;
  double s = 0.0;
  for (const auto& [k, v] : groups) s += v;
  return s;
}

double QueryResult::MeanRelativeErrorPercent(const QueryResult& truth) const {
  if (!truth.grouped) {
    return RelativeErrorPercent(grouped ? Total() : scalar, truth.scalar);
  }
  if (truth.groups.empty()) {
    return RelativeErrorPercent(Total(), 0.0);
  }
  double acc = 0.0;
  for (const auto& [label, true_value] : truth.groups) {
    auto it = groups.find(label);
    double est = (it == groups.end()) ? 0.0 : it->second;
    acc += RelativeErrorPercent(est, true_value);
  }
  return acc / static_cast<double>(truth.groups.size());
}

double QueryResult::TotalRelativeErrorPercent(const QueryResult& truth) const {
  return RelativeErrorPercent(Total(), truth.Total());
}

std::string QueryResult::ToString() const {
  if (!grouped) return Format("%.6g", scalar);
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : groups) {
    if (!first) out += ", ";
    first = false;
    out += Format("%s: %.6g", k.c_str(), v);
  }
  out += "}";
  return out;
}

}  // namespace dpstarj::exec
