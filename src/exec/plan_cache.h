// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// PlanCache — a thread-safe LRU of compiled ScanPlans keyed by a canonical
// *execution signature* of the bound query: the joined tables in bound
// order, FK/PK pairing, GROUP BY layout, measure terms, and the predicate
// (column, domain) sets — with predicate conjunction order normalized away,
// like query::CanonicalKey, but with ε and the predicate *bounds* omitted.
// A plan is pure bound-independent scaffolding, so one entry serves every
// privacy budget, every tenant replaying the query, every re-filtering of
// it with different constants, and every noisy Predicate Mechanism
// re-execution.
//
// Invalidation: tables are append-only, so a plan is stale exactly when one
// of its tables is no longer the same object or has grown. Every hit is
// validated with ScanPlan::Matches before use; callers can never execute
// against a stale scaffold. A stale entry whose only change is fact-table
// growth (streaming ingest) is *extended* in place via ScanPlan::ExtendFrom
// — tail-only work instead of a full recompile — and only dropped when the
// extension is declined (e.g. a fact group key outgrew its packed field).
// Any other staleness (a table object replaced, a dimension grew) drops the
// entry and recompiles; the two classes are counted separately. The service
// layer shares one PlanCache across all pool engines (see
// service/query_service.h).

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "exec/scan_plan.h"
#include "obs/trace.h"
#include "query/binder.h"

namespace dpstarj::exec {

/// \brief Thread-safe canonical-keyed LRU of compiled scan plans.
class PlanCache {
 public:
  /// Default entry capacity. Plans hold per-fact-row scaffolds — up to
  /// ≈ 24 + 8·dims bytes per fact row for grouped SUM queries with run-
  /// sorted layouts — so eviction is governed by a byte budget as well as
  /// this entry cap; popular queries dominate hits long before either
  /// matters.
  static constexpr size_t kDefaultCapacity = 32;
  /// Default scaffold-byte budget across all cached plans (LRU entries are
  /// evicted past it; the most recent plan is always kept).
  static constexpr size_t kDefaultMaxBytes = size_t{256} << 20;  // 256 MB

  /// Hit/miss/invalidation accounting, as returned by GetStats().
  struct Stats {
    uint64_t hits = 0;    ///< validated hits, extends included
    uint64_t misses = 0;  ///< lookups that compiled a fresh plan
    /// Append-stale entries revalidated by ScanPlan::ExtendFrom (each also
    /// counts as a hit: the cached scaffold was reused, not recompiled).
    uint64_t extends = 0;
    /// Stale entries dropped — always invalidated_append +
    /// invalidated_identity.
    uint64_t invalidations = 0;
    /// The fact table grew but the tail could not be spliced (packed group
    /// field overflow, or the plan was scalar-fallback).
    uint64_t invalidated_append = 0;
    /// A table object was replaced or a dimension changed size — nothing of
    /// the scaffold is salvageable.
    uint64_t invalidated_identity = 0;
    uint64_t evictions = 0;

    /// hits / (hits + misses), 0 when empty.
    double HitRate() const {
      uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  /// A capacity of 0 disables caching (every call compiles a fresh plan).
  explicit PlanCache(size_t capacity = kDefaultCapacity,
                     size_t max_bytes = kDefaultMaxBytes);

  /// \brief Returns the cached plan for `q`'s execution signature: a
  /// validated hit when fresh, an incremental extension when only the fact
  /// table grew, and a full compile otherwise. Extension and compilation
  /// both run outside the cache lock; two threads racing on the same cold
  /// key may both compile, and the later insert wins — wasted work, never
  /// wrong results.
  ///
  /// A non-null `trace` gets `plan_cache_hit` set on a validated hit or a
  /// successful extension, the extend span (obs::Stage::kPlanExtend)
  /// recorded on the extension path, and the compile span
  /// (obs::Stage::kPlanCompile) recorded on a miss.
  Result<std::shared_ptr<const ScanPlan>> GetOrCompile(
      const query::BoundQuery& q, obs::Trace* trace = nullptr);

  /// Drops every entry (stats are preserved).
  void Clear();

  /// Current entry count.
  size_t size() const;
  /// Approximate scaffold bytes currently cached.
  size_t bytes() const;
  /// Configured capacity.
  size_t capacity() const { return capacity_; }

  /// A consistent snapshot of the accounting counters.
  Stats GetStats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const ScanPlan>>;

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_bytes_;
  size_t bytes_ = 0;  ///< Σ ApproxBytes() over cached plans
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace dpstarj::exec
