#include "bench_util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace dpstarj::bench_util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatSeries(const std::string& label, const std::vector<double>& xs,
                         const std::vector<std::string>& ys) {
  std::string out = label + ":";
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    out += Format("  x=%.4g y=%s", xs[i], ys[i].c_str());
  }
  return out;
}

}  // namespace dpstarj::bench_util
