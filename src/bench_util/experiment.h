// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Shared experiment harness for the bench/ binaries: repeated-run error
// statistics (the paper reports the mean relative error over 10 independent
// runs), wall-clock capture, and environment knobs so CI can run scaled-down
// while a workstation reproduces paper-scale:
//   DPSTARJ_SF            SSB/TPC-H scale factor (default bench-specific)
//   DPSTARJ_RUNS          independent runs per point (default 10)
//   DPSTARJ_GRAPH_SCALE   graph size multiplier in (0,1]
//   DPSTARJ_TIME_LIMIT_S  baseline time limit in seconds

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

namespace dpstarj::bench_util {

/// \brief Summary of repeated runs.
struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  int runs = 0;
  /// True when any run hit Status::TimeLimit — the whole cell reports
  /// "over limit" like the paper.
  bool over_time_limit = false;
  /// True when the mechanism reported NotSupported.
  bool not_supported = false;
  /// First non-OK, non-time-limit status encountered (for diagnostics).
  Status error;

  /// Renders mean as "12.34", or "over limit" / "n/a" / "error".
  std::string Cell(int decimals = 2) const;

  /// Renders the median instead — used for mechanisms with heavy-tailed
  /// output noise (R2T's race), where the sample mean of the relative error
  /// diverges across runs.
  std::string MedianCell(int decimals = 2) const;
};

/// \brief Runs `trial` `runs` times, collecting one value per run. A trial
/// returning TimeLimit / NotSupported short-circuits into the corresponding
/// flag (no point repeating).
RunStats Repeat(int runs, const std::function<Result<double>()>& trial);

/// Environment knobs (with defaults).
double EnvDouble(const char* name, double def);
int EnvInt(const char* name, int def);

/// Default number of runs per point (DPSTARJ_RUNS, default 10).
int DefaultRuns();

}  // namespace dpstarj::bench_util
