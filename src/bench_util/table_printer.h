// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <string>
#include <vector>

namespace dpstarj::bench_util {

/// \brief Fixed-width console table, used by the bench binaries to print
/// paper-style tables (Table 1/2) and figure series.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row (must match the header arity; short rows are padded).
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns and a header separator.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a labelled series (figure-style output):
/// "label: x=0.25 y=12.3 | x=0.5 y=11.9 | ...".
std::string FormatSeries(const std::string& label, const std::vector<double>& xs,
                         const std::vector<std::string>& ys);

}  // namespace dpstarj::bench_util
