#include "bench_util/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/math_util.h"
#include "common/string_util.h"

namespace dpstarj::bench_util {

std::string RunStats::Cell(int decimals) const {
  if (over_time_limit) return "over limit";
  if (not_supported) return "n/a";
  if (!error.ok()) return "error";
  return Format("%.*f", decimals, mean);
}

std::string RunStats::MedianCell(int decimals) const {
  if (over_time_limit) return "over limit";
  if (not_supported) return "n/a";
  if (!error.ok()) return "error";
  return Format("%.*f", decimals, median);
}

RunStats Repeat(int runs, const std::function<Result<double>()>& trial) {
  RunStats stats;
  std::vector<double> values;
  values.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    Result<double> r = trial();
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kTimeLimit) {
        stats.over_time_limit = true;
      } else if (r.status().code() == StatusCode::kNotSupported) {
        stats.not_supported = true;
      } else {
        stats.error = r.status();
      }
      return stats;
    }
    values.push_back(*r);
  }
  stats.mean = Mean(values);
  stats.stddev = StdDev(values);
  stats.median = Median(values);
  stats.runs = runs;
  return stats;
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  double out = def;
  if (!ParseDouble(v, &out)) return def;
  return out;
}

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  int64_t out = def;
  if (!ParseInt64(v, &out)) return def;
  return static_cast<int>(out);
}

int DefaultRuns() { return EnvInt("DPSTARJ_RUNS", 10); }

}  // namespace dpstarj::bench_util
