// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// The Predicate Mechanism — the heart of DP-starJ (paper Algorithms 1 & 3).
//
// Instead of adding noise to the query *output* (whose sensitivity is
// unbounded under foreign-key cascades), PM perturbs the query *input*: each
// dimension predicate φ_{a_i} is replaced by a PMA-noised predicate with
// budget ε_i = ε/n (n = number of predicate-bearing dimensions), and the
// noisy query is executed verbatim over the real data. By Theorems 5.2–5.4
// the composition is ε-DP; the error depends only on the predicate domain
// sizes and the data distribution, never on join fan-outs.

#pragma once

#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "core/pma.h"
#include "exec/data_cube.h"
#include "exec/plan_cache.h"
#include "exec/query_result.h"
#include "exec/star_join_executor.h"
#include "exec/workload_plan.h"
#include "query/binder.h"

namespace dpstarj::core {

/// \brief One query of a batch Answer: a bound query and its own epsilon.
/// The pointed-to query must outlive the AnswerBatch call.
struct BatchQueryRef {
  const query::BoundQuery* query = nullptr;
  double epsilon = 0.0;
};

/// \brief Algorithms 1 & 3: DP star-join answering via predicate perturbation.
///
/// Thread-compatible: callers pass their own Rng. The mechanism owns one
/// executor and one plan cache (possibly shared, see below), both safe for
/// concurrent const use.
class PredicateMechanism {
 public:
  /// `exec_options` configures the executor running the perturbed query
  /// (thread count, morsel size). Execution strategy is post-processing: it
  /// never affects the noise draw, only throughput.
  ///
  /// `plan_cache` holds the compiled ScanPlans that make repeated Answer
  /// calls on the same bound query nearly free (only predicate bitmaps are
  /// rebuilt per noisy run). Pass a shared cache to pool plans across
  /// mechanisms/engines (the service layer does); nullptr gives the
  /// mechanism its own.
  explicit PredicateMechanism(PmaOptions pma = {},
                              exec::ExecutorOptions exec_options = {},
                              std::shared_ptr<exec::PlanCache> plan_cache = nullptr)
      : pma_(pma),
        executor_(exec_options),
        plan_cache_(plan_cache != nullptr
                        ? std::move(plan_cache)
                        : std::make_shared<exec::PlanCache>()) {}

  /// \brief Phase 2 of DP-starJ: perturbs every predicate of the bound query
  /// with its ε/n share, returning executor overrides (Algorithm 1 lines
  /// 2–5). Fails if the query carries no predicate (there would be nothing to
  /// randomize, so the output could not satisfy DP).
  Result<exec::PredicateOverrides> PerturbPredicates(const query::BoundQuery& q,
                                                     double epsilon, Rng* rng) const;

  /// \brief Algorithm 3 (and its SUM / GROUP BY variants, §5.3): perturb
  /// predicates, then answer the noisy query over the real instance.
  /// COUNT/SUM return a scalar; GROUP BY returns per-group aggregates.
  ///
  /// A non-null `trace` records the noise-draw, plan-compile, bitmap-rebuild
  /// and scan spans of this execution; the answer itself is unaffected.
  Result<exec::QueryResult> Answer(const query::BoundQuery& q, double epsilon,
                                   Rng* rng, obs::Trace* trace = nullptr) const;

  /// \brief Answers a batch of bound queries with **one shared fact sweep**
  /// (exec/workload_plan.h): predicates are perturbed per query in batch
  /// order — consuming the RNG exactly like sequential Answer calls, so the
  /// joint answer distribution is identical — then the perturbed queries'
  /// deduped predicate bitmaps are built once each and the fact table is
  /// swept once, accumulating every query simultaneously.
  ///
  /// Returns one Result per query, in batch order: a query that fails to
  /// perturb or plan gets its own error without failing the batch. Queries
  /// the batch path cannot take (scalar-pipeline plans, a disabled plan
  /// cache, strict integrity) fall back to single-query execution, still in
  /// batch order. `stats` (optional) accumulates the CSE receipts of the
  /// shared-scan portion.
  std::vector<Result<exec::QueryResult>> AnswerBatch(
      const std::vector<BatchQueryRef>& batch, Rng* rng,
      obs::Trace* trace = nullptr,
      exec::WorkloadExecStats* stats = nullptr) const;

  /// \brief Fast path for repeated-run experiments: evaluates the noisy
  /// predicates against a pre-built cube (must be built with
  /// DataCube::BuildFromQueryPredicates over the same query). Scalar
  /// aggregates only.
  Result<double> AnswerWithCube(const query::BoundQuery& q,
                                const exec::DataCube& cube, double epsilon,
                                Rng* rng) const;

  /// The plan cache answering executions (for stats and admin Clear()).
  const std::shared_ptr<exec::PlanCache>& plan_cache() const { return plan_cache_; }

 private:
  PmaOptions pma_;
  exec::StarJoinExecutor executor_;
  std::shared_ptr<exec::PlanCache> plan_cache_;
};

}  // namespace dpstarj::core
