// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Workload Decomposition (WD) — Algorithm 4 (§5.3): answering a workload of
// correlated star-join queries under one privacy budget.
//
// Pipeline per dimension attribute i (budget ε_i = ε/n):
//   1. one-hot encode the workload into the predicate matrix P_i (l × m_i);
//   2. choose a strategy A_i of interval queries (hierarchical for
//      range-structured workloads, identity otherwise) and solve
//      X_i = P_i · A_i⁺ so that P_i = X_i · A_i;
//   3. perturb every strategy interval with PMA (the Predicate Mechanism's
//      per-attribute primitive) to obtain the noisy strategy Â_i;
//   4. reconstruct the noisy predicate matrix P̂_i = X_i · Â_i.
// Query q's answer is the cube contraction Σ_cell Π_i P̂_i[q,·] · W (Eq. 11).
//
// NOTE on the paper: Algorithm 4 line 8 prints "P̂_i = A_i⁺ Â_i", whose shapes
// do not compose; we implement the standard matrix-mechanism reading above
// (documented in DESIGN.md §4).

#pragma once

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/pma.h"
#include "exec/data_cube.h"
#include "linalg/strategy.h"
#include "query/workload.h"

namespace dpstarj::core {

/// Strategy selection for WD.
enum class WorkloadStrategyKind : int {
  kAuto = 0,         ///< hierarchical if the predicate matrix has ranges, else identity
  kIdentity = 1,     ///< force identity
  kHierarchical = 2  ///< force hierarchical
};

/// \brief Options for the workload mechanisms.
struct WorkloadMechanismOptions {
  WorkloadStrategyKind strategy = WorkloadStrategyKind::kAuto;
  PmaOptions pma;
};

/// \brief Diagnostics returned alongside WD answers.
struct WorkloadDecompositionInfo {
  /// Chosen strategy description per attribute (e.g. "hierarchical(7)").
  std::vector<std::string> strategies;
};

/// \brief Answers a workload with Workload Decomposition. `cube` must be
/// built over `attributes` in the same order. Returns one noisy answer per
/// workload query. `info` (optional) receives strategy diagnostics.
Result<std::vector<double>> AnswerWorkloadWithDecomposition(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes, double epsilon,
    Rng* rng, const WorkloadMechanismOptions& options = {},
    WorkloadDecompositionInfo* info = nullptr);

/// \brief The straightforward alternative (§5.3): every query is answered
/// independently by the Predicate Mechanism with budget ε. Used as the PM
/// curve in Figure 9.
Result<std::vector<double>> AnswerWorkloadPerQuery(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes, double epsilon,
    Rng* rng, const PmaOptions& pma = {});

/// \brief True answers of the workload against the cube (for error metrics).
Result<std::vector<double>> TrueWorkloadAnswers(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes);

}  // namespace dpstarj::core
