// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Snowflake support (paper §5.3, "Predicate Mechanism for snowflake
// queries"): a snowflake schema hierarchizes dimensions (e.g. TPC-H
// Lineitem→Orders→Customer→Nation→Region). PM applies after *flattening*:
// every dimension reachable from the fact table is pre-joined into a single
// wide dimension table, turning the snowflake into a star; predicates on
// hierarchy attributes are rewritten onto the flattened dimension. This does
// not change query semantics (the pre-join is along foreign keys) and keeps
// attribute domains intact, so PMA sensitivities are unchanged.

#pragma once

#include <map>
#include <string>
#include <utility>

#include "common/result.h"
#include "query/star_query.h"
#include "storage/catalog.h"

namespace dpstarj::core {

/// \brief A snowflake schema flattened into a star schema.
class FlattenedSnowflake {
 public:
  /// \brief Flattens every dimension reachable from `fact_table` in `catalog`
  /// into a single-level star. Dimension-to-dimension foreign keys define the
  /// hierarchy; cycles are rejected.
  static Result<FlattenedSnowflake> Flatten(const storage::Catalog& catalog,
                                            const std::string& fact_table);

  /// The star-shaped catalog: the original fact table plus one flattened
  /// table per top-level dimension, with fact→dimension foreign keys.
  const storage::Catalog& catalog() const { return catalog_; }

  /// \brief Rewrites a query phrased against the snowflake schema (predicates
  /// and group-by keys may reference hierarchy tables like Nation/Region)
  /// into the flattened star schema.
  Result<query::StarJoinQuery> Rewrite(const query::StarJoinQuery& q) const;

  /// Flattened location of an original column, e.g. (Nation, n_regionkey) →
  /// (Orders, Customer_Nation_n_regionkey).
  Result<std::pair<std::string, std::string>> MapColumn(
      const std::string& table, const std::string& column) const;

  /// Top-level dimension holding an original (possibly nested) table.
  Result<std::string> MapTable(const std::string& table) const;

 private:
  storage::Catalog catalog_;
  /// (original table, column) → (flattened dim, column).
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::string>>
      column_map_;
  /// original table → top-level flattened dimension.
  std::map<std::string, std::string> table_map_;
  std::string fact_table_;
};

}  // namespace dpstarj::core
