// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// PMA — Predicate Mechanism for an Attribute (paper Algorithm 2).
//
// Point constraint a = v:   v̂ = v + Lap(|dom(a)|/ε), rounded and clamped into
//                           the domain.
// Range constraint a∈[l,r]: two readings of Algorithm 2 are provided:
//   * kSharedShift (default) — one Laplace draw Lap(|dom|/ε) translates the
//     whole interval, clamped so it stays inside the domain; the width is
//     preserved exactly. This is the only reading consistent with the paper's
//     reported utility: Table 1's Qc4 keeps ~8% error at ε = 0.1 although the
//     per-endpoint noise scale (2·7/0.025 = 560) dwarfs the year domain — a
//     mechanism that can change the range *width* at that scale answers with
//     the wrong selectivity almost surely (DESIGN.md §4).
//   * kIndependentEndpoints — the verbatim text: each endpoint gets ε/2 of
//     the budget (noise Lap(2·|dom|/ε)), clamped into the domain, resampled
//     until the interval is proper (l̂ < r̂), with a bounded retry count and
//     an order-and-widen fallback to guarantee termination.
//
// All arithmetic happens in domain-index space [0, m); the global sensitivity
// of a predicate is its attribute's domain size m (Theorem 5.2).

#pragma once

#include "common/random.h"
#include "common/result.h"
#include "query/predicate.h"

namespace dpstarj::core {

/// How range constraints are perturbed (see file comment).
enum class PmaRangeMode : int {
  kSharedShift = 0,
  kIndependentEndpoints = 1,
};

/// \brief Tunables for PMA.
struct PmaOptions {
  /// Range perturbation reading.
  PmaRangeMode range_mode = PmaRangeMode::kSharedShift;
  /// kIndependentEndpoints: resample attempts for degenerate perturbed ranges
  /// before falling back to ordering-and-widening the endpoints.
  int max_range_retries = 64;
};

/// \brief Algorithm 2: perturbs one bound predicate with budget ε.
///
/// The returned predicate has the same table/column/domain with noisy
/// lo/hi indices; feeding it back through the executor (as a predicate
/// override) yields the noisy query of Algorithm 1.
Result<query::BoundPredicate> PerturbPredicate(const query::BoundPredicate& pred,
                                               double epsilon, Rng* rng,
                                               const PmaOptions& options = {});

/// \brief The Laplace scale PMA uses for a point constraint: m/ε.
double PmaPointScale(int64_t domain_size, double epsilon);
/// \brief The Laplace scale PMA uses per range endpoint: 2m/ε.
double PmaRangeScale(int64_t domain_size, double epsilon);

}  // namespace dpstarj::core
