#include "core/workload_mechanism.h"

#include "common/string_util.h"

namespace dpstarj::core {

namespace {

// Extracts query q's predicate on attribute a from the one-hot row: nullopt
// when the row selects the full domain (no predicate). Rows are intervals by
// construction of BuildPredicateMatrices on point/range queries.
Result<std::optional<query::BoundPredicate>> RowToPredicate(
    const linalg::Matrix& m, int q, const query::DimensionAttribute& attr) {
  int lo = -1, hi = -1;
  for (int c = 0; c < m.cols(); ++c) {
    if (m.At(q, c) != 0.0) {
      if (lo < 0) lo = c;
      hi = c;
    }
  }
  if (lo < 0) return Status::InvalidArgument("workload row selects nothing");
  for (int c = lo; c <= hi; ++c) {
    if (m.At(q, c) != 1.0) {
      return Status::NotSupported("workload row is not an interval");
    }
  }
  if (lo == 0 && hi == m.cols() - 1) {
    return std::optional<query::BoundPredicate>();  // full domain
  }
  query::BoundPredicate p;
  p.table = attr.table;
  p.column = attr.column;
  p.column_index = -1;  // not tied to a physical column; cube evaluation only
  p.domain = attr.domain;
  p.kind = (lo == hi) ? query::PredicateKind::kPoint : query::PredicateKind::kRange;
  p.lo_index = lo;
  p.hi_index = hi;
  return std::optional<query::BoundPredicate>(std::move(p));
}

// A strategy interval as a bound predicate for PMA.
query::BoundPredicate IntervalToPredicate(const query::DimensionAttribute& attr,
                                          int lo, int hi) {
  query::BoundPredicate p;
  p.table = attr.table;
  p.column = attr.column;
  p.column_index = -1;
  p.domain = attr.domain;
  p.kind = (lo == hi) ? query::PredicateKind::kPoint : query::PredicateKind::kRange;
  p.lo_index = lo;
  p.hi_index = hi;
  return p;
}

}  // namespace

Result<std::vector<double>> AnswerWorkloadWithDecomposition(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes, double epsilon,
    Rng* rng, const WorkloadMechanismOptions& options,
    WorkloadDecompositionInfo* info) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (attributes.empty()) return Status::InvalidArgument("no workload attributes");
  if (cube.axes().size() != attributes.size()) {
    return Status::InvalidArgument("cube axes must match workload attributes");
  }
  if (workload.size() == 0) return std::vector<double>{};

  DPSTARJ_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> pred_matrices,
                           query::BuildPredicateMatrices(workload, attributes));

  int n = static_cast<int>(attributes.size());
  double epsilon_i = epsilon / static_cast<double>(n);
  if (info != nullptr) info->strategies.clear();

  // Per attribute: choose strategy, decompose, perturb, reconstruct.
  std::vector<linalg::Matrix> noisy_pred_matrices;
  noisy_pred_matrices.reserve(attributes.size());
  for (size_t a = 0; a < attributes.size(); ++a) {
    int m = static_cast<int>(attributes[a].domain.size());
    linalg::IntervalStrategy strategy;
    switch (options.strategy) {
      case WorkloadStrategyKind::kIdentity:
        strategy = linalg::MakeIdentityStrategy(m);
        break;
      case WorkloadStrategyKind::kHierarchical:
        strategy = linalg::MakeHierarchicalStrategy(m);
        break;
      case WorkloadStrategyKind::kAuto:
        strategy = linalg::ChooseStrategy(pred_matrices[a], m);
        break;
    }
    if (info != nullptr) info->strategies.push_back(strategy.description);

    linalg::Matrix strategy_matrix = strategy.AsMatrix();
    DPSTARJ_ASSIGN_OR_RETURN(
        linalg::Matrix x, linalg::SolveDecomposition(pred_matrices[a], strategy_matrix));

    // Perturb every strategy interval with PMA at the attribute's budget.
    linalg::Matrix noisy_strategy(static_cast<int>(strategy.intervals.size()), m);
    for (size_t j = 0; j < strategy.intervals.size(); ++j) {
      auto [lo, hi] = strategy.intervals[j];
      query::BoundPredicate pred = IntervalToPredicate(attributes[a], lo, hi);
      DPSTARJ_ASSIGN_OR_RETURN(query::BoundPredicate noisy,
                               PerturbPredicate(pred, epsilon_i, rng, options.pma));
      for (int c = static_cast<int>(noisy.lo_index); c <= static_cast<int>(noisy.hi_index);
           ++c) {
        noisy_strategy.At(static_cast<int>(j), c) = 1.0;
      }
    }
    DPSTARJ_ASSIGN_OR_RETURN(linalg::Matrix reconstructed, x.Multiply(noisy_strategy));
    noisy_pred_matrices.push_back(std::move(reconstructed));
  }

  // Contract each query's noisy predicate rows against the cube.
  std::vector<double> answers;
  answers.reserve(static_cast<size_t>(workload.size()));
  for (int q = 0; q < workload.size(); ++q) {
    std::vector<std::vector<double>> axis_weights;
    axis_weights.reserve(attributes.size());
    for (size_t a = 0; a < attributes.size(); ++a) {
      axis_weights.push_back(noisy_pred_matrices[a].Row(q));
    }
    DPSTARJ_ASSIGN_OR_RETURN(double ans, cube.EvaluateWeighted(axis_weights));
    answers.push_back(ans);
  }
  return answers;
}

Result<std::vector<double>> AnswerWorkloadPerQuery(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes, double epsilon,
    Rng* rng, const PmaOptions& pma) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (cube.axes().size() != attributes.size()) {
    return Status::InvalidArgument("cube axes must match workload attributes");
  }
  DPSTARJ_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> pred_matrices,
                           query::BuildPredicateMatrices(workload, attributes));

  std::vector<double> answers;
  answers.reserve(static_cast<size_t>(workload.size()));
  for (int q = 0; q < workload.size(); ++q) {
    // Collect this query's predicates.
    std::vector<std::optional<query::BoundPredicate>> preds(attributes.size());
    int n = 0;
    for (size_t a = 0; a < attributes.size(); ++a) {
      DPSTARJ_ASSIGN_OR_RETURN(preds[a],
                               RowToPredicate(pred_matrices[a], q, attributes[a]));
      if (preds[a].has_value()) ++n;
    }
    if (n == 0) {
      return Status::InvalidArgument(
          Format("workload query %d has no predicate; PM cannot answer it", q));
    }
    double epsilon_i = epsilon / static_cast<double>(n);
    std::vector<const query::BoundPredicate*> noisy_ptrs(attributes.size(), nullptr);
    std::vector<query::BoundPredicate> noisy_storage(attributes.size());
    for (size_t a = 0; a < attributes.size(); ++a) {
      if (!preds[a].has_value()) continue;
      DPSTARJ_ASSIGN_OR_RETURN(noisy_storage[a],
                               PerturbPredicate(*preds[a], epsilon_i, rng, pma));
      noisy_ptrs[a] = &noisy_storage[a];
    }
    DPSTARJ_ASSIGN_OR_RETURN(double ans, cube.Evaluate(noisy_ptrs));
    answers.push_back(ans);
  }
  return answers;
}

Result<std::vector<double>> TrueWorkloadAnswers(
    const exec::DataCube& cube, const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes) {
  DPSTARJ_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> pred_matrices,
                           query::BuildPredicateMatrices(workload, attributes));
  std::vector<double> answers;
  answers.reserve(static_cast<size_t>(workload.size()));
  for (int q = 0; q < workload.size(); ++q) {
    std::vector<std::vector<double>> axis_weights;
    for (size_t a = 0; a < attributes.size(); ++a) {
      axis_weights.push_back(pred_matrices[a].Row(q));
    }
    DPSTARJ_ASSIGN_OR_RETURN(double ans, cube.EvaluateWeighted(axis_weights));
    answers.push_back(ans);
  }
  return answers;
}

}  // namespace dpstarj::core
