#include "core/predicate_mechanism.h"

#include "common/string_util.h"

namespace dpstarj::core {

Result<exec::PredicateOverrides> PredicateMechanism::PerturbPredicates(
    const query::BoundQuery& q, double epsilon, Rng* rng) const {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");

  int n = q.NumPredicates();
  if (n == 0) {
    return Status::InvalidArgument(
        "Predicate Mechanism requires at least one dimension predicate; a "
        "predicate-free aggregate has no input to randomize");
  }
  double epsilon_i = epsilon / static_cast<double>(n);

  exec::PredicateOverrides overrides(q.dims.size());
  for (size_t i = 0; i < q.dims.size(); ++i) {
    if (q.dims[i].predicates.empty()) continue;
    std::vector<query::BoundPredicate> noisy_preds;
    noisy_preds.reserve(q.dims[i].predicates.size());
    for (const auto& pred : q.dims[i].predicates) {
      DPSTARJ_ASSIGN_OR_RETURN(query::BoundPredicate noisy,
                               PerturbPredicate(pred, epsilon_i, rng, pma_));
      noisy_preds.push_back(std::move(noisy));
    }
    overrides[i] = std::move(noisy_preds);
  }
  return overrides;
}

Result<exec::QueryResult> PredicateMechanism::Answer(const query::BoundQuery& q,
                                                     double epsilon, Rng* rng,
                                                     obs::Trace* trace) const {
  Result<exec::PredicateOverrides> overrides = [&] {
    obs::ScopedStage noise_span(trace, obs::Stage::kNoiseDraw);
    return PerturbPredicates(q, epsilon, rng);
  }();
  if (!overrides.ok()) return overrides.status();
  // A disabled cache (capacity 0) means "no plan reuse": take the fresh-build
  // pipeline directly instead of compiling a scaffold that would be thrown
  // away — compile costs more than one fresh execution.
  if (plan_cache_->capacity() == 0) {
    obs::ScopedStage scan_span(trace, obs::Stage::kScan);
    return executor_.Execute(q, *overrides);
  }
  // Execute against the cached scaffold: the first Answer on a query compiles
  // its ScanPlan, every later one (and every other tenant/engine sharing the
  // cache) only rebuilds predicate bitmaps. Plan reuse is pure execution
  // strategy — the noise was drawn above, so results are distributed exactly
  // as a fresh-build execution (and are bit-identical given the same draw).
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<const exec::ScanPlan> plan,
                           plan_cache_->GetOrCompile(q, trace));
  return executor_.Execute(q, *overrides, *plan, trace);
}

std::vector<Result<exec::QueryResult>> PredicateMechanism::AnswerBatch(
    const std::vector<BatchQueryRef>& batch, Rng* rng, obs::Trace* trace,
    exec::WorkloadExecStats* stats) const {
  // Per-query outcome slots (Result has no default constructor).
  std::vector<std::optional<Result<exec::QueryResult>>> slots(batch.size());
  std::vector<exec::PredicateOverrides> overrides(batch.size());

  // ---- 1. noise: perturb each query at its own epsilon, in batch order.
  // This consumes the RNG exactly as `for q: Answer(q, ...)` would, so the
  // batch strategy below is pure post-processing over the same draws.
  {
    obs::ScopedStage noise_span(trace, obs::Stage::kNoiseDraw);
    for (size_t k = 0; k < batch.size(); ++k) {
      if (batch[k].query == nullptr) {
        slots[k] = Status::InvalidArgument("batch query must not be null");
        continue;
      }
      Result<exec::PredicateOverrides> ov =
          PerturbPredicates(*batch[k].query, batch[k].epsilon, rng);
      if (!ov.ok()) {
        slots[k] = ov.status();
        continue;
      }
      overrides[k] = std::move(*ov);
    }
  }

  // ---- 2. execution strategy. Without a plan cache (or under strict
  // integrity, which needs the single-query path's exact row reporting)
  // every query takes a fresh single-query execution.
  if (plan_cache_->capacity() == 0 || executor_.options().strict_integrity) {
    obs::ScopedStage scan_span(trace, obs::Stage::kScan);
    for (size_t k = 0; k < batch.size(); ++k) {
      if (slots[k].has_value()) continue;
      slots[k] = executor_.Execute(*batch[k].query, overrides[k]);
    }
  } else {
    // Warm path: collect each query's cached scaffold, peel off the ones the
    // shared scan cannot take, and batch the rest into one WorkloadPlan.
    std::vector<exec::WorkloadItem> items;
    std::vector<size_t> item_query;  // items[i] answers batch[item_query[i]]
    items.reserve(batch.size());
    item_query.reserve(batch.size());
    for (size_t k = 0; k < batch.size(); ++k) {
      if (slots[k].has_value()) continue;
      Result<std::shared_ptr<const exec::ScanPlan>> plan =
          plan_cache_->GetOrCompile(*batch[k].query, trace);
      if (!plan.ok()) {
        slots[k] = plan.status();
        continue;
      }
      if ((*plan)->requires_scalar()) {
        slots[k] =
            executor_.Execute(*batch[k].query, overrides[k], **plan, trace);
        continue;
      }
      exec::WorkloadItem item;
      item.query = batch[k].query;
      item.overrides = &overrides[k];
      item.plan = std::move(*plan);
      items.push_back(std::move(item));
      item_query.push_back(k);
    }
    if (!items.empty()) {
      Result<exec::WorkloadPlan> wplan =
          exec::WorkloadPlan::Compile(std::move(items));
      if (!wplan.ok()) {
        for (size_t k : item_query) slots[k] = wplan.status();
      } else {
        if (stats != nullptr) {
          const exec::WorkloadExecStats& s = wplan->stats();
          stats->queries += s.queries;
          stats->scans += s.scans;
          stats->predicate_refs += s.predicate_refs;
          stats->predicate_nodes += s.predicate_nodes;
          stats->shared_dim_slots += s.shared_dim_slots;
        }
        Result<std::vector<exec::QueryResult>> results =
            wplan->Execute(executor_.options(), trace);
        if (!results.ok()) {
          for (size_t k : item_query) slots[k] = results.status();
        } else {
          for (size_t i = 0; i < item_query.size(); ++i) {
            slots[item_query[i]] = std::move((*results)[i]);
          }
        }
      }
    }
  }

  std::vector<Result<exec::QueryResult>> out;
  out.reserve(batch.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

Result<double> PredicateMechanism::AnswerWithCube(const query::BoundQuery& q,
                                                  const exec::DataCube& cube,
                                                  double epsilon, Rng* rng) const {
  if (!q.group_key_layout.empty()) {
    return Status::NotSupported("cube path does not support GROUP BY");
  }
  DPSTARJ_ASSIGN_OR_RETURN(exec::PredicateOverrides overrides,
                           PerturbPredicates(q, epsilon, rng));
  // Collect the noisy predicates in dims-then-predicate order — the cube axis
  // order of BuildFromQueryPredicates.
  std::vector<const query::BoundPredicate*> preds;
  for (size_t i = 0; i < q.dims.size(); ++i) {
    if (!overrides[i].has_value()) continue;
    for (const auto& p : *overrides[i]) preds.push_back(&p);
  }
  if (preds.size() != cube.axes().size()) {
    return Status::InvalidArgument(
        Format("cube has %zu axes but the query has %zu predicates",
               cube.axes().size(), preds.size()));
  }
  return cube.Evaluate(preds);
}

}  // namespace dpstarj::core
