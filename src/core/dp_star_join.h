// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// DpStarJoin — the user-facing facade of the library. Wires together the
// catalog, the SQL front-end, the binder, the star-join executor, the
// Predicate Mechanism and Workload Decomposition, with optional cumulative
// privacy-budget accounting.
//
// Typical use:
//   dpstarj::core::DpStarJoin engine(&catalog);
//   auto noisy = engine.AnswerSql(
//       "SELECT count(*) FROM Lineorder, Date "
//       "WHERE Lineorder.orderdate = Date.datekey AND Date.year = 1993",
//       /*epsilon=*/0.5);

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/predicate_mechanism.h"
#include "core/workload_mechanism.h"
#include "dp/budget.h"
#include "exec/query_result.h"
#include "exec/star_join_executor.h"
#include "query/binder.h"
#include "query/workload.h"
#include "storage/catalog.h"

namespace dpstarj::core {

/// \brief Facade configuration.
struct DpStarJoinOptions {
  /// Seed for all mechanism randomness (reproducible runs).
  uint64_t seed = Rng::kDefaultSeed;
  /// PMA tunables.
  PmaOptions pma;
  /// When set, the engine enforces a cumulative privacy budget: every Answer*
  /// call spends its ε and fails with BudgetExhausted once depleted.
  std::optional<double> total_budget;
  /// Strategy selection for workload decomposition.
  WorkloadStrategyKind workload_strategy = WorkloadStrategyKind::kAuto;
  /// Star-join executor tuning (scan thread count, morsel size). Pure
  /// post-processing: never affects noise semantics, only throughput.
  exec::ExecutorOptions executor;
  /// Compiled-plan cache for repeated Predicate Mechanism executions. When
  /// null the engine's mechanism creates a private one; the service layer
  /// injects one shared cache across all pool engines so any engine's
  /// compile warms every other. Also pure post-processing.
  std::shared_ptr<exec::PlanCache> plan_cache;
};

/// \brief The DP-starJ engine.
///
/// Not thread-safe (owns one Rng and one budget); use one engine per thread.
class DpStarJoin {
 public:
  /// The catalog must outlive the engine.
  explicit DpStarJoin(const storage::Catalog* catalog, DpStarJoinOptions options = {});

  /// \brief Answers a star-join query under ε-DP with the Predicate Mechanism
  /// (Algorithm 3; COUNT, SUM and GROUP BY are all supported per §5.3).
  Result<exec::QueryResult> Answer(const query::StarJoinQuery& q, double epsilon);

  /// Parses SQL, resolves it against the catalog, and answers under ε-DP.
  Result<exec::QueryResult> AnswerSql(const std::string& sql, double epsilon);

  /// \brief Answers an already-bound query with caller-provided randomness,
  /// bypassing the engine's own Rng and budget.
  ///
  /// This is the const, re-entrant core of Answer/AnswerSql: it touches no
  /// engine state besides the (immutable) mechanism options, so it is safe to
  /// call concurrently as long as each caller supplies a distinct Rng. The
  /// service layer routes every pool-worker answer through here — budget
  /// accounting lives in service::BudgetLedger, randomness in the worker's
  /// per-engine stream. A non-null `trace` records the mechanism's stage
  /// spans (noise draw, plan compile, bitmap rebuild, scan).
  Result<exec::QueryResult> AnswerBound(const query::BoundQuery& bound,
                                        double epsilon, Rng* rng,
                                        obs::Trace* trace = nullptr) const;

  /// \brief Batch form of AnswerBound: answers every query of `batch` with
  /// one shared fact sweep (predicate CSE across queries, see
  /// exec/workload_plan.h), each perturbed independently at its own epsilon
  /// in batch order — the joint answer distribution is identical to
  /// sequential AnswerBound calls on the same Rng. Returns one Result per
  /// query, in batch order; per-query failures do not fail the batch. Const
  /// and re-entrant like AnswerBound; budget accounting stays with the
  /// caller.
  std::vector<Result<exec::QueryResult>> AnswerBoundBatch(
      const std::vector<BatchQueryRef>& batch, Rng* rng,
      obs::Trace* trace = nullptr,
      exec::WorkloadExecStats* stats = nullptr) const;

  /// Exact (non-private) answer — for utility evaluation only.
  Result<exec::QueryResult> TrueAnswer(const query::StarJoinQuery& q) const;
  /// Exact (non-private) answer of SQL text.
  Result<exec::QueryResult> TrueAnswerSql(const std::string& sql) const;

  /// \brief Answers a workload of counting queries over the given dimension
  /// attributes under ε-DP. `decompose` selects Workload Decomposition
  /// (Algorithm 4) vs independent per-query PM (§5.3's baseline).
  Result<std::vector<double>> AnswerWorkload(
      const query::Workload& workload,
      const std::vector<query::DimensionAttribute>& attributes, double epsilon,
      bool decompose = true);

  /// Exact workload answers.
  Result<std::vector<double>> TrueWorkload(
      const query::Workload& workload,
      const std::vector<query::DimensionAttribute>& attributes) const;

  /// Remaining budget (nullopt when accounting is disabled).
  std::optional<double> RemainingBudget() const;

  /// The engine's RNG (e.g. to reseed between experiments).
  Rng* rng() { return &rng_; }

  /// The engine's binder (shares the engine's catalog; const and re-entrant).
  const query::Binder& binder() const { return binder_; }

 private:
  Status SpendBudget(double epsilon);
  Result<exec::DataCube> BuildWorkloadCube(
      const query::Workload& workload,
      const std::vector<query::DimensionAttribute>& attributes) const;

  const storage::Catalog* catalog_;
  DpStarJoinOptions options_;
  query::Binder binder_;
  PredicateMechanism mechanism_;
  Rng rng_;
  std::optional<dp::PrivacyBudget> budget_;
};

}  // namespace dpstarj::core
