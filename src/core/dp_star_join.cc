#include "core/dp_star_join.h"

#include "exec/naive_executor.h"
#include "exec/star_join_executor.h"

namespace dpstarj::core {

DpStarJoin::DpStarJoin(const storage::Catalog* catalog, DpStarJoinOptions options)
    : catalog_(catalog),
      options_(options),
      binder_(catalog),
      mechanism_(options.pma, options.executor, options.plan_cache),
      rng_(options.seed) {
  DPSTARJ_CHECK(catalog != nullptr, "catalog must not be null");
  if (options_.total_budget.has_value()) {
    budget_.emplace(*options_.total_budget);
  }
}

Status DpStarJoin::SpendBudget(double epsilon) {
  if (!budget_.has_value()) return Status::OK();
  return budget_->Spend(epsilon);
}

Result<exec::QueryResult> DpStarJoin::Answer(const query::StarJoinQuery& q,
                                             double epsilon) {
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bound, binder_.Bind(q));
  DPSTARJ_RETURN_NOT_OK(SpendBudget(epsilon));
  return mechanism_.Answer(bound, epsilon, &rng_);
}

Result<exec::QueryResult> DpStarJoin::AnswerSql(const std::string& sql,
                                                double epsilon) {
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bound, binder_.BindSql(sql));
  DPSTARJ_RETURN_NOT_OK(SpendBudget(epsilon));
  return mechanism_.Answer(bound, epsilon, &rng_);
}

Result<exec::QueryResult> DpStarJoin::AnswerBound(const query::BoundQuery& bound,
                                                  double epsilon, Rng* rng,
                                                  obs::Trace* trace) const {
  return mechanism_.Answer(bound, epsilon, rng, trace);
}

std::vector<Result<exec::QueryResult>> DpStarJoin::AnswerBoundBatch(
    const std::vector<BatchQueryRef>& batch, Rng* rng, obs::Trace* trace,
    exec::WorkloadExecStats* stats) const {
  return mechanism_.AnswerBatch(batch, rng, trace, stats);
}

Result<exec::QueryResult> DpStarJoin::TrueAnswer(const query::StarJoinQuery& q) const {
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bound, binder_.Bind(q));
  exec::StarJoinExecutor executor(options_.executor);
  return executor.Execute(bound);
}

Result<exec::QueryResult> DpStarJoin::TrueAnswerSql(const std::string& sql) const {
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bound, binder_.BindSql(sql));
  exec::StarJoinExecutor executor(options_.executor);
  return executor.Execute(bound);
}

Result<exec::DataCube> DpStarJoin::BuildWorkloadCube(
    const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes) const {
  if (workload.size() == 0) {
    return Status::InvalidArgument("empty workload");
  }
  // Assemble a predicate-free base query joining the attribute dimensions;
  // the cube over `attributes` is the W vector all answers contract against.
  query::StarJoinQuery base;
  base.fact_table = workload.queries[0].fact_table;
  base.aggregate = workload.queries[0].aggregate;
  base.measure_terms = workload.queries[0].measure_terms;
  for (const auto& q : workload.queries) {
    if (q.fact_table != base.fact_table) {
      return Status::InvalidArgument("workload queries must share a fact table");
    }
  }
  for (const auto& attr : attributes) {
    bool present = false;
    for (const auto& t : base.joined_tables) {
      if (t == attr.table) {
        present = true;
        break;
      }
    }
    if (!present) base.joined_tables.push_back(attr.table);
  }
  DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bound, binder_.Bind(base));
  return exec::DataCube::Build(bound, attributes);
}

Result<std::vector<double>> DpStarJoin::AnswerWorkload(
    const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes, double epsilon,
    bool decompose) {
  if (decompose) {
    DPSTARJ_ASSIGN_OR_RETURN(exec::DataCube cube,
                             BuildWorkloadCube(workload, attributes));
    DPSTARJ_RETURN_NOT_OK(SpendBudget(epsilon));
    WorkloadMechanismOptions opts;
    opts.strategy = options_.workload_strategy;
    opts.pma = options_.pma;
    return AnswerWorkloadWithDecomposition(cube, workload, attributes, epsilon,
                                           &rng_, opts);
  }
  // Independent per-query PM (§5.3's baseline), executed through the
  // shared-scan batch path: bind every workload query and answer the whole
  // set in one fact sweep with cross-query predicate CSE. Each query is
  // perturbed independently at ε/n like AnswerWorkloadPerQuery; batching is
  // post-processing, so the answer distribution is unchanged — only the
  // scan count drops from l to 1.
  if (workload.size() == 0) return Status::InvalidArgument("empty workload");
  std::vector<query::BoundQuery> bound;
  bound.reserve(workload.queries.size());
  for (const auto& q : workload.queries) {
    DPSTARJ_ASSIGN_OR_RETURN(query::BoundQuery bq, binder_.Bind(q));
    bound.push_back(std::move(bq));
  }
  DPSTARJ_RETURN_NOT_OK(SpendBudget(epsilon));
  std::vector<BatchQueryRef> batch;
  batch.reserve(bound.size());
  for (const auto& bq : bound) batch.push_back({&bq, epsilon});
  std::vector<Result<exec::QueryResult>> results =
      mechanism_.AnswerBatch(batch, &rng_);
  std::vector<double> answers;
  answers.reserve(results.size());
  for (auto& r : results) {
    DPSTARJ_RETURN_NOT_OK(r.status());
    answers.push_back(r->scalar);
  }
  return answers;
}

Result<std::vector<double>> DpStarJoin::TrueWorkload(
    const query::Workload& workload,
    const std::vector<query::DimensionAttribute>& attributes) const {
  DPSTARJ_ASSIGN_OR_RETURN(exec::DataCube cube,
                           BuildWorkloadCube(workload, attributes));
  return TrueWorkloadAnswers(cube, workload, attributes);
}

std::optional<double> DpStarJoin::RemainingBudget() const {
  if (!budget_.has_value()) return std::nullopt;
  return budget_->remaining();
}

}  // namespace dpstarj::core
