#include "core/pma.h"

#include <cmath>

#include "common/math_util.h"

namespace dpstarj::core {

double PmaPointScale(int64_t domain_size, double epsilon) {
  return static_cast<double>(domain_size) / epsilon;
}

double PmaRangeScale(int64_t domain_size, double epsilon) {
  return 2.0 * static_cast<double>(domain_size) / epsilon;
}

namespace {

int64_t NoisyIndex(int64_t index, double scale, int64_t domain_size, Rng* rng) {
  double noisy = static_cast<double>(index) + rng->Laplace(scale);
  int64_t rounded = static_cast<int64_t>(std::llround(noisy));
  return ClampInt(rounded, 0, domain_size - 1);
}

}  // namespace

Result<query::BoundPredicate> PerturbPredicate(const query::BoundPredicate& pred,
                                               double epsilon, Rng* rng,
                                               const PmaOptions& options) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be positive");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  int64_t m = pred.domain.size();
  if (m <= 0) return Status::InvalidArgument("empty attribute domain");
  if (pred.lo_index < 0 || pred.hi_index >= m || pred.lo_index > pred.hi_index) {
    return Status::InvalidArgument("predicate indices out of domain");
  }

  query::BoundPredicate noisy = pred;

  if (pred.kind == query::PredicateKind::kPoint) {
    double scale = PmaPointScale(m, epsilon);
    int64_t v = NoisyIndex(pred.lo_index, scale, m, rng);
    noisy.lo_index = v;
    noisy.hi_index = v;
    return noisy;
  }

  // Domains of size 1 cannot host a proper interval; the predicate
  // degenerates to the (deterministic) full domain.
  if (m == 1) {
    noisy.lo_index = 0;
    noisy.hi_index = 0;
    return noisy;
  }

  if (options.range_mode == PmaRangeMode::kSharedShift) {
    // One Laplace draw translates the interval; clamping keeps it inside the
    // domain with its width intact.
    int64_t width = pred.hi_index - pred.lo_index;  // width-1 cells
    double shift = rng->Laplace(static_cast<double>(m) / epsilon);
    int64_t lo =
        static_cast<int64_t>(std::llround(static_cast<double>(pred.lo_index) + shift));
    lo = ClampInt(lo, 0, m - 1 - width);
    noisy.lo_index = lo;
    noisy.hi_index = lo + width;
    return noisy;
  }

  // kIndependentEndpoints: each endpoint receives ε/2, i.e. scale 2m/ε, and
  // Algorithm 2's guard "while l̂ < r̂" accepts only a proper interval.
  double scale = PmaRangeScale(m, epsilon);
  for (int attempt = 0; attempt < options.max_range_retries; ++attempt) {
    int64_t lo = NoisyIndex(pred.lo_index, scale, m, rng);
    int64_t hi = NoisyIndex(pred.hi_index, scale, m, rng);
    if (lo < hi) {
      noisy.lo_index = lo;
      noisy.hi_index = hi;
      return noisy;
    }
  }
  // Fallback: one more draw, endpoints ordered and widened to a proper
  // interval. This keeps the mechanism total (the loop as printed in the
  // paper may never terminate).
  int64_t lo = NoisyIndex(pred.lo_index, scale, m, rng);
  int64_t hi = NoisyIndex(pred.hi_index, scale, m, rng);
  noisy.lo_index = std::min(lo, hi);
  noisy.hi_index = std::max(lo, hi);
  if (noisy.lo_index == noisy.hi_index) {
    if (noisy.hi_index < m - 1) {
      ++noisy.hi_index;
    } else {
      --noisy.lo_index;
    }
  }
  return noisy;
}

}  // namespace dpstarj::core
