#include "core/snowflake.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace dpstarj::core {

namespace {

using ColumnMap =
    std::map<std::pair<std::string, std::string>, std::pair<std::string, std::string>>;

/// Recursively flattens `dim` by pre-joining its referenced sub-dimensions.
/// `prefix` accumulates the attribute-name prefix; `mapping` receives
/// (original table, column) → (top-level name, flattened column) entries keyed
/// relative to `top`. `visiting` detects cycles.
Result<std::shared_ptr<storage::Table>> FlattenDim(
    const storage::Catalog& catalog, const std::string& dim, const std::string& top,
    const std::string& prefix, ColumnMap* mapping,
    std::unordered_set<std::string>* visiting) {
  if (!visiting->insert(dim).second) {
    return Status::InvalidArgument(
        Format("cycle in dimension hierarchy at '%s'", dim.c_str()));
  }
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> table, catalog.GetTable(dim));
  std::vector<storage::ForeignKey> sub_fks = catalog.ForeignKeysFrom(dim);

  // Record this table's own columns.
  for (int i = 0; i < table->schema().num_fields(); ++i) {
    const auto& f = table->schema().field(i);
    (*mapping)[{dim, f.name}] = {top, prefix + f.name};
  }

  if (sub_fks.empty()) {
    visiting->erase(dim);
    if (prefix.empty()) return table;  // top-level leaf: reuse as-is
    // Nested leaf: rebuild with prefixed names (schema only differs in names).
    storage::Schema schema;
    for (int i = 0; i < table->schema().num_fields(); ++i) {
      storage::Field f = table->schema().field(i);
      f.name = prefix + f.name;
      DPSTARJ_RETURN_NOT_OK(schema.AddField(std::move(f)));
    }
    std::string pk = table->primary_key().empty() ? "" : prefix + table->primary_key();
    DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> renamed,
                             storage::Table::Create(dim + "_flat", std::move(schema), pk));
    renamed->Reserve(table->num_rows());
    for (int64_t r = 0; r < table->num_rows(); ++r) {
      DPSTARJ_RETURN_NOT_OK(renamed->AppendRow(table->GetRow(r)));
    }
    return renamed;
  }

  // Flatten sub-dimensions first.
  struct Sub {
    storage::ForeignKey fk;
    std::shared_ptr<storage::Table> flat;
    std::unordered_map<int64_t, int64_t> pk_to_row;
    int fk_col = -1;  // in `table`
    int pk_col = -1;  // in `flat`
  };
  std::vector<Sub> subs;
  for (const auto& fk : sub_fks) {
    Sub s;
    s.fk = fk;
    DPSTARJ_ASSIGN_OR_RETURN(
        s.flat, FlattenDim(catalog, fk.dim_table, top, prefix + fk.dim_table + "_",
                           mapping, visiting));
    DPSTARJ_ASSIGN_OR_RETURN(s.fk_col, table->schema().FieldIndex(fk.fact_column));
    // The sub's pk column may have been prefixed during flattening.
    std::string sub_pk = s.flat->primary_key();
    if (sub_pk.empty()) {
      return Status::InvalidArgument(
          Format("hierarchy table '%s' has no primary key", fk.dim_table.c_str()));
    }
    DPSTARJ_ASSIGN_OR_RETURN(s.pk_col, s.flat->schema().FieldIndex(sub_pk));
    if (s.flat->column(s.pk_col).type() != storage::ValueType::kInt64 ||
        table->column(s.fk_col).type() != storage::ValueType::kInt64) {
      return Status::NotSupported("hierarchy join keys must be int64");
    }
    const auto& pks = s.flat->column(s.pk_col).int64_data();
    s.pk_to_row.reserve(pks.size() * 2);
    for (size_t r = 0; r < pks.size(); ++r) {
      s.pk_to_row.emplace(pks[r], static_cast<int64_t>(r));
    }
    subs.push_back(std::move(s));
  }

  // Assemble the flattened schema: own fields (prefixed) then each sub's
  // fields except its primary key (already prefixed by recursion).
  storage::Schema schema;
  for (int i = 0; i < table->schema().num_fields(); ++i) {
    storage::Field f = table->schema().field(i);
    f.name = prefix + f.name;
    DPSTARJ_RETURN_NOT_OK(schema.AddField(std::move(f)));
  }
  for (const auto& s : subs) {
    for (int i = 0; i < s.flat->schema().num_fields(); ++i) {
      if (i == s.pk_col) continue;
      DPSTARJ_RETURN_NOT_OK(schema.AddField(s.flat->schema().field(i)));
    }
  }

  std::string pk = table->primary_key().empty() ? "" : prefix + table->primary_key();
  std::string flat_name = prefix.empty() ? dim : dim + "_flat";
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> flat,
                           storage::Table::Create(flat_name, std::move(schema), pk));
  flat->Reserve(table->num_rows());
  std::vector<storage::Value> row;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    row = table->GetRow(r);
    for (const auto& s : subs) {
      int64_t key = table->column(s.fk_col).GetInt64(r);
      auto it = s.pk_to_row.find(key);
      if (it == s.pk_to_row.end()) {
        return Status::InvalidArgument(
            Format("dangling hierarchy key %lld from '%s' into '%s'",
                   static_cast<long long>(key), dim.c_str(), s.fk.dim_table.c_str()));
      }
      std::vector<storage::Value> sub_row = s.flat->GetRow(it->second);
      for (size_t i = 0; i < sub_row.size(); ++i) {
        if (static_cast<int>(i) == s.pk_col) continue;
        row.push_back(std::move(sub_row[i]));
      }
    }
    DPSTARJ_RETURN_NOT_OK(flat->AppendRow(row));
  }
  visiting->erase(dim);
  return flat;
}

/// Records table→top mapping for every table reachable from `dim`.
void RecordReachable(const storage::Catalog& catalog, const std::string& dim,
                     const std::string& top, std::map<std::string, std::string>* out) {
  if (out->count(dim) != 0) return;
  (*out)[dim] = top;
  for (const auto& fk : catalog.ForeignKeysFrom(dim)) {
    RecordReachable(catalog, fk.dim_table, top, out);
  }
}

}  // namespace

Result<FlattenedSnowflake> FlattenedSnowflake::Flatten(const storage::Catalog& catalog,
                                                       const std::string& fact_table) {
  FlattenedSnowflake out;
  out.fact_table_ = fact_table;
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> fact,
                           catalog.GetTable(fact_table));
  DPSTARJ_RETURN_NOT_OK(out.catalog_.AddTable(fact));
  out.table_map_[fact_table] = fact_table;

  for (const auto& fk : catalog.ForeignKeysFrom(fact_table)) {
    std::unordered_set<std::string> visiting;
    DPSTARJ_ASSIGN_OR_RETURN(
        std::shared_ptr<storage::Table> flat,
        FlattenDim(catalog, fk.dim_table, fk.dim_table, "", &out.column_map_,
                   &visiting));
    RecordReachable(catalog, fk.dim_table, fk.dim_table, &out.table_map_);
    DPSTARJ_RETURN_NOT_OK(out.catalog_.AddTable(flat));
    storage::ForeignKey star_fk = fk;
    star_fk.dim_table = flat->name();
    // Top-level dims keep their name and pk; register under the flat name.
    star_fk.dim_column = flat->primary_key();
    DPSTARJ_RETURN_NOT_OK(out.catalog_.AddForeignKey(star_fk));
    if (flat->name() != fk.dim_table) {
      // Flattened table was renamed (nested case keeps "<dim>" since prefix is
      // empty at top level; this branch is defensive).
      out.table_map_[fk.dim_table] = flat->name();
    }
  }
  return out;
}

Result<std::pair<std::string, std::string>> FlattenedSnowflake::MapColumn(
    const std::string& table, const std::string& column) const {
  auto it = column_map_.find({table, column});
  if (it == column_map_.end()) {
    return Status::NotFound(
        Format("no flattened mapping for %s.%s", table.c_str(), column.c_str()));
  }
  return it->second;
}

Result<std::string> FlattenedSnowflake::MapTable(const std::string& table) const {
  auto it = table_map_.find(table);
  if (it == table_map_.end()) {
    return Status::NotFound(Format("table '%s' is not part of the snowflake",
                                   table.c_str()));
  }
  return it->second;
}

Result<query::StarJoinQuery> FlattenedSnowflake::Rewrite(
    const query::StarJoinQuery& q) const {
  if (q.fact_table != fact_table_) {
    return Status::InvalidArgument(
        Format("query fact table '%s' does not match flattened fact '%s'",
               q.fact_table.c_str(), fact_table_.c_str()));
  }
  query::StarJoinQuery out = q;
  out.joined_tables.clear();
  std::unordered_set<std::string> seen;
  for (const auto& t : q.joined_tables) {
    DPSTARJ_ASSIGN_OR_RETURN(std::string top, MapTable(t));
    if (top != fact_table_ && seen.insert(top).second) {
      out.joined_tables.push_back(top);
    }
  }

  auto rewrite_ref = [&](const query::ColumnRef& ref) -> Result<query::ColumnRef> {
    if (ref.table == fact_table_) return ref;
    DPSTARJ_ASSIGN_OR_RETURN(auto mapped, MapColumn(ref.table, ref.column));
    query::ColumnRef r;
    r.table = mapped.first;
    r.column = mapped.second;
    // Ensure the owning dimension is joined.
    if (seen.insert(mapped.first).second) out.joined_tables.push_back(mapped.first);
    return r;
  };

  out.predicates.clear();
  for (const auto& p : q.predicates) {
    DPSTARJ_ASSIGN_OR_RETURN(auto mapped, MapColumn(p.table(), p.column()));
    if (seen.insert(mapped.first).second) out.joined_tables.push_back(mapped.first);
    // Rebuild the predicate with the new address, preserving constraint form.
    if (p.index_space()) {
      if (p.kind() == query::PredicateKind::kPoint) {
        out.predicates.push_back(
            query::Predicate::PointIndex(mapped.first, mapped.second, p.lo_index()));
      } else {
        out.predicates.push_back(query::Predicate::RangeIndex(
            mapped.first, mapped.second, p.lo_index(), p.hi_index()));
      }
      continue;
    }
    if (p.is_or_pair()) {
      out.predicates.push_back(query::Predicate::PointPair(
          mapped.first, mapped.second, p.lo_value(), p.hi_value()));
    } else if (p.kind() == query::PredicateKind::kPoint) {
      out.predicates.push_back(
          query::Predicate::Point(mapped.first, mapped.second, p.point_value()));
    } else if (!p.has_lo()) {
      out.predicates.push_back(query::Predicate::AtMost(mapped.first, mapped.second,
                                                        p.hi_value(), p.hi_strict()));
    } else if (!p.has_hi()) {
      out.predicates.push_back(query::Predicate::AtLeast(mapped.first, mapped.second,
                                                         p.lo_value(), p.lo_strict()));
    } else {
      out.predicates.push_back(query::Predicate::Range(mapped.first, mapped.second,
                                                       p.lo_value(), p.hi_value()));
    }
  }

  out.group_by.clear();
  for (const auto& g : q.group_by) {
    DPSTARJ_ASSIGN_OR_RETURN(query::ColumnRef r, rewrite_ref(g));
    out.group_by.push_back(std::move(r));
  }
  out.order_by.clear();
  for (const auto& o : q.order_by) {
    DPSTARJ_ASSIGN_OR_RETURN(query::ColumnRef r, rewrite_ref(o));
    out.order_by.push_back(std::move(r));
  }
  return out;
}

}  // namespace dpstarj::core
