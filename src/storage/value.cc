#include "storage/value.h"

#include "common/string_util.h"

namespace dpstarj::storage {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

double Value::ToNumeric() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  if (is_double()) return AsDouble();
  return 0.0;
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) return dpstarj::Format("%.6g", AsDouble());
  return AsString();
}

}  // namespace dpstarj::storage
