#include "storage/column.h"

#include "common/string_util.h"

namespace dpstarj::storage {

Column::Column(ValueType type, std::shared_ptr<Dictionary> dict) : type_(type) {
  if (type_ == ValueType::kString) {
    dict_ = dict ? std::move(dict) : std::make_shared<Dictionary>();
  }
}

int64_t Column::size() const {
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<int64_t>(int64_data_.size());
    case ValueType::kDouble:
      return static_cast<int64_t>(double_data_.size());
    case ValueType::kString:
      return static_cast<int64_t>(code_data_.size());
  }
  return 0;
}

Status Column::Append(const Value& v) {
  switch (type_) {
    case ValueType::kInt64:
      if (v.is_int64()) {
        AppendInt64(v.AsInt64());
        return Status::OK();
      }
      if (v.is_double()) {  // tolerate integral doubles from CSV
        AppendInt64(static_cast<int64_t>(v.AsDouble()));
        return Status::OK();
      }
      break;
    case ValueType::kDouble:
      if (v.is_double() || v.is_int64()) {
        AppendDouble(v.ToNumeric());
        return Status::OK();
      }
      break;
    case ValueType::kString:
      if (v.is_string()) {
        AppendString(v.AsString());
        return Status::OK();
      }
      break;
  }
  return Status::InvalidArgument(
      Format("cannot append %s value to %s column", ValueTypeToString(v.type()),
             ValueTypeToString(type_)));
}

void Column::AppendInt64(int64_t v) {
  DPSTARJ_CHECK(type_ == ValueType::kInt64, "AppendInt64 on non-int64 column");
  int64_data_.push_back(v);
}

void Column::AppendDouble(double v) {
  DPSTARJ_CHECK(type_ == ValueType::kDouble, "AppendDouble on non-double column");
  double_data_.push_back(v);
}

void Column::AppendStringCode(int32_t code) {
  DPSTARJ_CHECK(type_ == ValueType::kString, "AppendStringCode on non-string column");
  DPSTARJ_CHECK(code >= 0 && code < dict_->size(), "unknown dictionary code");
  code_data_.push_back(code);
}

int32_t Column::AppendString(std::string_view s) {
  DPSTARJ_CHECK(type_ == ValueType::kString, "AppendString on non-string column");
  int32_t code = dict_->GetOrInsert(s);
  code_data_.push_back(code);
  return code;
}

int64_t Column::GetInt64(int64_t row) const {
  return int64_data_[static_cast<size_t>(row)];
}

double Column::GetDouble(int64_t row) const {
  return double_data_[static_cast<size_t>(row)];
}

int32_t Column::GetStringCode(int64_t row) const {
  return code_data_[static_cast<size_t>(row)];
}

const std::string& Column::GetString(int64_t row) const {
  return dict_->At(code_data_[static_cast<size_t>(row)]);
}

Value Column::GetValue(int64_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return Value(GetInt64(row));
    case ValueType::kDouble:
      return Value(GetDouble(row));
    case ValueType::kString:
      return Value(GetString(row));
  }
  return Value();
}

double Column::GetNumeric(int64_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return static_cast<double>(GetInt64(row));
    case ValueType::kDouble:
      return GetDouble(row);
    case ValueType::kString:
      return static_cast<double>(GetStringCode(row));
  }
  return 0.0;
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case ValueType::kInt64:
      int64_data_.reserve(static_cast<size_t>(n));
      break;
    case ValueType::kDouble:
      double_data_.reserve(static_cast<size_t>(n));
      break;
    case ValueType::kString:
      code_data_.reserve(static_cast<size_t>(n));
      break;
  }
}

}  // namespace dpstarj::storage
