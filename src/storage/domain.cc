#include "storage/domain.h"

#include <unordered_set>

#include "common/string_util.h"

namespace dpstarj::storage {

AttributeDomain AttributeDomain::IntRange(int64_t lo, int64_t hi) {
  DPSTARJ_CHECK(lo <= hi, "IntRange requires lo <= hi");
  AttributeDomain d;
  d.categorical_ = false;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

AttributeDomain AttributeDomain::Categorical(std::vector<std::string> values) {
  DPSTARJ_CHECK(!values.empty(), "Categorical domain must be non-empty");
  std::unordered_set<std::string> seen;
  for (const auto& v : values) {
    DPSTARJ_CHECK(seen.insert(v).second, "Categorical domain has duplicate value");
  }
  AttributeDomain d;
  d.categorical_ = true;
  d.categories_ = std::move(values);
  return d;
}

int64_t AttributeDomain::size() const {
  if (categorical_) return static_cast<int64_t>(categories_.size());
  return hi_ - lo_ + 1;
}

Result<int64_t> AttributeDomain::IndexOf(const Value& v) const {
  if (categorical_) {
    if (!v.is_string()) {
      return Status::InvalidArgument("categorical domain expects a string value");
    }
    for (size_t i = 0; i < categories_.size(); ++i) {
      if (categories_[i] == v.AsString()) return static_cast<int64_t>(i);
    }
    return Status::NotFound(Format("value '%s' not in domain", v.AsString().c_str()));
  }
  if (!v.is_int64()) {
    return Status::InvalidArgument("integer domain expects an int64 value");
  }
  int64_t x = v.AsInt64();
  if (x < lo_ || x > hi_) {
    return Status::NotFound(Format("value %lld outside [%lld, %lld]",
                                   static_cast<long long>(x),
                                   static_cast<long long>(lo_),
                                   static_cast<long long>(hi_)));
  }
  return x - lo_;
}

Value AttributeDomain::ValueAt(int64_t index) const {
  DPSTARJ_CHECK(index >= 0 && index < size(), "domain index out of range");
  if (categorical_) return Value(categories_[static_cast<size_t>(index)]);
  return Value(lo_ + index);
}

std::string AttributeDomain::ToString() const {
  if (categorical_) return Format("cat{%lld}", static_cast<long long>(size()));
  return Format("int[%lld,%lld]", static_cast<long long>(lo_),
                static_cast<long long>(hi_));
}

}  // namespace dpstarj::storage
