#include "storage/catalog.h"

#include <unordered_set>

#include "common/string_util.h"

namespace dpstarj::storage {

std::string ForeignKey::ToString() const {
  return Format("%s.%s -> %s.%s", fact_table.c_str(), fact_column.c_str(),
                dim_table.c_str(), dim_column.c_str());
}

Status Catalog::AddTable(std::shared_ptr<Table> table) {
  if (!table) return Status::InvalidArgument("null table");
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists(Format("table '%s' already registered", name.c_str()));
  }
  table_order_.push_back(name);
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(Format("no table named '%s'", name.c_str()));
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) != 0;
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> fact, GetTable(fk.fact_table));
  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> dim, GetTable(fk.dim_table));
  if (!fact->schema().HasField(fk.fact_column)) {
    return Status::InvalidArgument(
        Format("fact column '%s' not in '%s'", fk.fact_column.c_str(),
               fk.fact_table.c_str()));
  }
  if (!dim->schema().HasField(fk.dim_column)) {
    return Status::InvalidArgument(
        Format("dim column '%s' not in '%s'", fk.dim_column.c_str(),
               fk.dim_table.c_str()));
  }
  if (dim->primary_key() != fk.dim_column) {
    return Status::InvalidArgument(
        Format("foreign key must reference the primary key of '%s' (pk='%s', got '%s')",
               fk.dim_table.c_str(), dim->primary_key().c_str(), fk.dim_column.c_str()));
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

std::vector<ForeignKey> Catalog::ForeignKeysFrom(const std::string& fact) const {
  std::vector<ForeignKey> out;
  for (const auto& fk : foreign_keys_) {
    if (fk.fact_table == fact) out.push_back(fk);
  }
  return out;
}

Result<ForeignKey> Catalog::ForeignKeyBetween(const std::string& fact,
                                              const std::string& dim) const {
  for (const auto& fk : foreign_keys_) {
    if (fk.fact_table == fact && fk.dim_table == dim) return fk;
  }
  return Status::NotFound(
      Format("no foreign key from '%s' to '%s'", fact.c_str(), dim.c_str()));
}

std::vector<std::string> Catalog::TableNames() const { return table_order_; }

namespace {
// Collects the set of key values in a column as int64s (string columns use
// dictionary codes, which are only comparable within one dictionary, so we
// hash the strings themselves in that case).
Status CollectKeySet(const Column& col, std::unordered_set<int64_t>* int_keys,
                     std::unordered_set<std::string>* str_keys) {
  if (col.type() == ValueType::kString) {
    for (int64_t r = 0; r < col.size(); ++r) str_keys->insert(col.GetString(r));
  } else if (col.type() == ValueType::kInt64) {
    for (int64_t r = 0; r < col.size(); ++r) int_keys->insert(col.GetInt64(r));
  } else {
    return Status::InvalidArgument("double columns cannot be join keys");
  }
  return Status::OK();
}
}  // namespace

Status Catalog::ValidateIntegrity() const {
  for (const auto& fk : foreign_keys_) {
    DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> fact, GetTable(fk.fact_table));
    DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> dim, GetTable(fk.dim_table));
    DPSTARJ_ASSIGN_OR_RETURN(const Column* fcol, fact->ColumnByName(fk.fact_column));
    DPSTARJ_ASSIGN_OR_RETURN(const Column* dcol, dim->ColumnByName(fk.dim_column));
    if (fcol->type() != dcol->type()) {
      return Status::InvalidArgument(
          Format("type mismatch on %s", fk.ToString().c_str()));
    }
    std::unordered_set<int64_t> int_keys;
    std::unordered_set<std::string> str_keys;
    DPSTARJ_RETURN_NOT_OK(CollectKeySet(*dcol, &int_keys, &str_keys));
    for (int64_t r = 0; r < fcol->size(); ++r) {
      bool found = fcol->type() == ValueType::kString
                       ? str_keys.count(fcol->GetString(r)) != 0
                       : int_keys.count(fcol->GetInt64(r)) != 0;
      if (!found) {
        return Status::InvalidArgument(
            Format("dangling foreign key in row %lld of %s",
                   static_cast<long long>(r), fk.ToString().c_str()));
      }
    }
  }
  return Status::OK();
}

}  // namespace dpstarj::storage
