// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace dpstarj::storage {

/// \brief Physical column types. Strings are dictionary-encoded inside
/// columns; Value carries them un-encoded for row building and I/O.
enum class ValueType : int { kInt64 = 0, kDouble = 1, kString = 2 };

/// Returns "int64" / "double" / "string".
const char* ValueTypeToString(ValueType t);

/// \brief A dynamically typed cell, used at the API boundary (row appends,
/// CSV, query literals). Columnar storage never materializes Values in bulk.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}             // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  /// The dynamic type of the held value.
  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kInt64;
      case 1:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_int64() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_string() const { return v_.index() == 2; }

  /// Typed accessors; the caller must know the type (checked in debug).
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 and double both convert; strings return 0.
  double ToNumeric() const;

  /// Renders the value for CSV/debug output.
  std::string ToString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace dpstarj::storage
