#include "storage/table.h"

#include <cmath>

#include "common/string_util.h"

namespace dpstarj::storage {

Table::Table(std::string name, Schema schema, std::string primary_key, int pk_index)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      pk_index_(pk_index) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

Result<std::shared_ptr<Table>> Table::Create(std::string name, Schema schema,
                                             std::string primary_key) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  int pk_index = -1;
  if (!primary_key.empty()) {
    auto idx = schema.FieldIndex(primary_key);
    if (!idx.ok()) {
      return Status::InvalidArgument(
          Format("primary key '%s' is not a column of '%s'", primary_key.c_str(),
                 name.c_str()));
    }
    pk_index = *idx;
  }
  return std::shared_ptr<Table>(
      new Table(std::move(name), std::move(schema), std::move(primary_key), pk_index));
}

Status Table::ValidateRow(const std::vector<Value>& values) const {
  if (static_cast<int>(values.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        Format("row arity %zu != schema arity %d", values.size(),
               schema_.num_fields()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    ValueType ct = columns_[i].type();
    ValueType vt = values[i].type();
    bool ok = (ct == vt) || (ct == ValueType::kDouble && vt == ValueType::kInt64);
    if (ct == ValueType::kInt64 && vt == ValueType::kDouble) {
      // Tolerate doubles in integer columns only when the narrowing cast in
      // Column::Append is exact: a fractional value would be silently
      // truncated, and one outside int64 range makes the cast undefined.
      double d = values[i].AsDouble();
      ok = std::floor(d) == d && d >= -9223372036854775808.0 &&
           d < 9223372036854775808.0;
    }
    if (!ok) {
      return Status::InvalidArgument(
          Format("column %zu of '%s' expects %s, got %s", i, name_.c_str(),
                 ValueTypeToString(ct), ValueTypeToString(vt)));
    }
  }
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  // Validate all cells before mutating anything, so a failed append leaves the
  // table unchanged.
  Status valid = ValidateRow(values);
  if (!valid.ok()) return valid;
  for (size_t i = 0; i < values.size(); ++i) {
    Status st = columns_[i].Append(values[i]);
    DPSTARJ_CHECK(st.ok(), "validated append must not fail");
  }
  ++num_rows_;
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  DPSTARJ_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[static_cast<size_t>(idx)];
}

Result<Column*> Table::MutableColumnByName(const std::string& name) {
  DPSTARJ_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::FinishBulkAppend(int64_t count) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size() != count) {
      return Status::Internal(
          Format("bulk append mismatch in '%s' column %zu: %lld rows, expected %lld",
                 name_.c_str(), i, static_cast<long long>(columns_[i].size()),
                 static_cast<long long>(count)));
    }
  }
  num_rows_ = count;
  return Status::OK();
}

void Table::Reserve(int64_t n) {
  for (auto& c : columns_) c.Reserve(n);
}

std::vector<Value> Table::GetRow(int64_t row) const {
  DPSTARJ_CHECK(row >= 0 && row < num_rows_, "row index out of range");
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

}  // namespace dpstarj::storage
