// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/domain.h"
#include "storage/value.h"

namespace dpstarj::storage {

/// \brief A named, typed column descriptor, optionally with a declared finite
/// domain (required for attributes that may carry DP-perturbed predicates).
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;
  /// Declared finite domain; nullopt for free-form attributes (keys, measures).
  std::optional<AttributeDomain> domain;

  Field() = default;
  Field(std::string n, ValueType t) : name(std::move(n)), type(t) {}
  Field(std::string n, ValueType t, AttributeDomain d)
      : name(std::move(n)), type(t), domain(std::move(d)) {}
};

/// \brief An ordered list of Fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails if the name already exists.
  Status AddField(Field field);

  /// Number of fields.
  int num_fields() const { return static_cast<int>(fields_.size()); }
  /// Field by position.
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  /// All fields.
  const std::vector<Field>& fields() const { return fields_; }

  /// Position of the field named `name`, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;
  /// True if a field named `name` exists.
  bool HasField(const std::string& name) const;

  /// Debug rendering: "name:type, ...".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace dpstarj::storage
