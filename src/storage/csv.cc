#include "storage/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace dpstarj::storage {

namespace {

bool NeedsQuoting(const std::string& s, char delim) {
  return s.find(delim) != std::string::npos || s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Splits one CSV record honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path, char delim) {
  std::ofstream out(path);
  if (!out) return Status::IoError(Format("cannot open '%s' for writing", path.c_str()));
  const Schema& schema = table.schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i) out << delim;
    out << schema.field(i).name;
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (c) out << delim;
      std::string s = table.column(c).GetValue(r).ToString();
      out << (NeedsQuoting(s, delim) ? QuoteField(s) : s);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError(Format("write to '%s' failed", path.c_str()));
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const std::string& table_name, Schema schema,
                                       std::string primary_key, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IoError(Format("cannot open '%s' for reading", path.c_str()));

  std::string header;
  if (!std::getline(in, header)) {
    return Status::ParseError(Format("'%s' is empty", path.c_str()));
  }
  std::vector<std::string> names = SplitCsvLine(header, delim);
  if (static_cast<int>(names.size()) != schema.num_fields()) {
    return Status::ParseError(
        Format("'%s' header has %zu columns, schema expects %d", path.c_str(),
               names.size(), schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (std::string(Trim(names[static_cast<size_t>(i)])) != schema.field(i).name) {
      return Status::ParseError(
          Format("'%s' header column %d is '%s', schema expects '%s'", path.c_str(), i,
                 names[static_cast<size_t>(i)].c_str(), schema.field(i).name.c_str()));
    }
  }

  DPSTARJ_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                           Table::Create(table_name, std::move(schema),
                                         std::move(primary_key)));
  std::string line;
  int64_t lineno = 1;
  std::vector<Value> row;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, delim);
    if (static_cast<int>(fields.size()) != table->schema().num_fields()) {
      return Status::ParseError(Format("'%s' line %lld: arity mismatch", path.c_str(),
                                       static_cast<long long>(lineno)));
    }
    row.clear();
    for (int i = 0; i < table->schema().num_fields(); ++i) {
      const std::string& f = fields[static_cast<size_t>(i)];
      switch (table->schema().field(i).type) {
        case ValueType::kInt64: {
          int64_t v = 0;
          if (!ParseInt64(f, &v)) {
            return Status::ParseError(Format("'%s' line %lld col %d: bad int '%s'",
                                             path.c_str(), static_cast<long long>(lineno),
                                             i, f.c_str()));
          }
          row.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          if (!ParseDouble(f, &v)) {
            return Status::ParseError(Format("'%s' line %lld col %d: bad double '%s'",
                                             path.c_str(), static_cast<long long>(lineno),
                                             i, f.c_str()));
          }
          row.emplace_back(v);
          break;
        }
        case ValueType::kString:
          row.emplace_back(f);
          break;
      }
    }
    DPSTARJ_RETURN_NOT_OK(table->AppendRow(row));
  }
  return table;
}

}  // namespace dpstarj::storage
