// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace dpstarj::storage {

/// \brief A named, append-only columnar table.
///
/// Tables are created from a Schema; columns are materialized eagerly. The
/// primary key (if any) is a single column designated at construction — star
/// schemas join fact foreign keys against dimension primary keys.
class Table {
 public:
  /// Creates an empty table. `primary_key` names a column of the schema or is
  /// empty for key-less tables (e.g. the fact table).
  static Result<std::shared_ptr<Table>> Create(std::string name, Schema schema,
                                               std::string primary_key = "");

  /// Table name (unique within a Catalog).
  const std::string& name() const { return name_; }
  /// The schema.
  const Schema& schema() const { return schema_; }
  /// Number of rows.
  int64_t num_rows() const { return num_rows_; }
  /// Primary key column name ("" if none).
  const std::string& primary_key() const { return primary_key_; }
  /// Primary key column index (-1 if none).
  int primary_key_index() const { return pk_index_; }

  /// \brief Monotonically increasing mutation epoch, starting at 0.
  ///
  /// The service's ingest path bumps it once per accepted append batch and
  /// folds it into answer-cache keys, so a noisy answer drawn before an
  /// append is never replayed after it (each epoch is a fresh DP release;
  /// see docs/wire-protocol.md). The counter is atomic so unlocked readers
  /// (cache-key construction on the budget-probe path) see a coherent value;
  /// the row data itself is only safe to scan under the service's per-table
  /// reader lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  /// Advances the epoch. Called by writers after the rows are in place.
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// \brief Checks `values` against the schema (arity; types, with int64 ↔
  /// double coercion allowed) without mutating anything — the validation
  /// half of AppendRow, exposed so batch writers (streaming ingest) can
  /// pre-validate a whole batch outside the write lock and then apply it
  /// all-or-nothing.
  Status ValidateRow(const std::vector<Value>& values) const;

  /// \brief Appends one row; `values` must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  /// Column by position.
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  /// Mutable column by position (for bulk generators).
  Column* mutable_column(int i) { return &columns_[static_cast<size_t>(i)]; }

  /// Column by name.
  Result<const Column*> ColumnByName(const std::string& name) const;
  /// Mutable column by name.
  Result<Column*> MutableColumnByName(const std::string& name);

  /// \brief Declares that `count` rows were appended directly through the
  /// column interfaces; verifies all columns have that length.
  Status FinishBulkAppend(int64_t count);

  /// Reserves capacity in every column.
  void Reserve(int64_t n);

  /// One row as Values (slow path, for tests/IO).
  std::vector<Value> GetRow(int64_t row) const;

 private:
  Table(std::string name, Schema schema, std::string primary_key, int pk_index);

  std::string name_;
  Schema schema_;
  std::string primary_key_;
  int pk_index_ = -1;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
  std::atomic<uint64_t> version_{0};
};

}  // namespace dpstarj::storage
