// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace dpstarj::storage {

/// \brief A foreign-key constraint: fact_table.fact_column references
/// dim_table's primary key column dim_column.
///
/// The (a,b)-private neighboring definitions (paper §3.2) are driven by these
/// constraints: deleting a private dimension tuple deletes every fact tuple
/// referencing it.
struct ForeignKey {
  std::string fact_table;
  std::string fact_column;
  std::string dim_table;
  std::string dim_column;

  std::string ToString() const;
};

/// \brief A database instance: named tables plus foreign-key constraints.
///
/// For star schemas there is one fact table referencing n dimension tables;
/// the Catalog does not hard-code that shape (snowflake hierarchies register
/// dimension→dimension keys too) but offers star-oriented lookups.
class Catalog {
 public:
  /// Registers a table; fails on duplicate names.
  Status AddTable(std::shared_ptr<Table> table);

  /// Looks up a table by name.
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  /// True if a table with this name exists.
  bool HasTable(const std::string& name) const;

  /// Registers a foreign key; both tables/columns must exist and the
  /// referenced column must be the dim table's primary key.
  Status AddForeignKey(ForeignKey fk);

  /// All registered constraints.
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Constraints whose referencing side is `fact`.
  std::vector<ForeignKey> ForeignKeysFrom(const std::string& fact) const;

  /// The constraint linking `fact` to `dim`, if any.
  Result<ForeignKey> ForeignKeyBetween(const std::string& fact,
                                       const std::string& dim) const;

  /// All table names in registration order.
  std::vector<std::string> TableNames() const;

  /// \brief Full referential-integrity check: every foreign-key value in every
  /// fact row must have a matching primary-key row. O(total rows).
  Status ValidateIntegrity() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::vector<std::string> table_order_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace dpstarj::storage
