// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Minimal CSV import/export so generated benchmark instances can be persisted
// and inspected, and external data (e.g. real SNAP edge lists) can be loaded.

#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace dpstarj::storage {

/// \brief Writes `table` to `path` with a header row. Fields containing the
/// delimiter are quoted.
Status WriteCsv(const Table& table, const std::string& path, char delim = ',');

/// \brief Reads a CSV with a header row into a new table using `schema` for
/// types (header names must match the schema, in order). Rows failing to
/// parse produce a ParseError naming the line.
Result<std::shared_ptr<Table>> ReadCsv(const std::string& path,
                                       const std::string& table_name, Schema schema,
                                       std::string primary_key = "",
                                       char delim = ',');

}  // namespace dpstarj::storage
