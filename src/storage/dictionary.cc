#include "storage/dictionary.h"

#include "common/status.h"

namespace dpstarj::storage {

int32_t Dictionary::GetOrInsert(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

int32_t Dictionary::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::At(int32_t code) const {
  DPSTARJ_CHECK(code >= 0 && code < size(), "dictionary code out of range");
  return strings_[static_cast<size_t>(code)];
}

}  // namespace dpstarj::storage
