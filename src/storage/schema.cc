#include "storage/schema.h"

#include "common/string_util.h"

namespace dpstarj::storage {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    Status st = AddField(std::move(f));
    DPSTARJ_CHECK(st.ok(), "duplicate field name in Schema constructor");
  }
}

Status Schema::AddField(Field field) {
  if (index_.count(field.name) != 0) {
    return Status::AlreadyExists(Format("field '%s' already in schema",
                                        field.name.c_str()));
  }
  index_.emplace(field.name, static_cast<int>(fields_.size()));
  fields_.push_back(std::move(field));
  return Status::OK();
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(Format("no field named '%s'", name.c_str()));
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) != 0;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace dpstarj::storage
