// Copyright (c) dpstarj authors. Licensed under the MIT license.
//
// Finite ordered attribute domains. The Predicate Mechanism's sensitivity for
// a predicate on attribute a_i is |dom(a_i)| (paper §5.2), so every dimension
// attribute that may carry a filter predicate declares its domain here.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace dpstarj::storage {

/// \brief A finite, totally ordered value domain for a dimension attribute.
///
/// Two kinds:
///  * integer range [lo, hi] — e.g. Date.year ∈ [1992, 1998] (size 7);
///  * categorical — an explicit ordered list of strings, e.g. the five SSB
///    regions. Order is the declaration order; PMA's Laplace shifts move
///    along this order.
class AttributeDomain {
 public:
  AttributeDomain() = default;

  /// Integer domain {lo, lo+1, ..., hi}.
  static AttributeDomain IntRange(int64_t lo, int64_t hi);

  /// Categorical domain with the given ordered values (must be non-empty and
  /// duplicate-free; checked).
  static AttributeDomain Categorical(std::vector<std::string> values);

  /// True for categorical domains.
  bool is_categorical() const { return categorical_; }

  /// Domain size m_i = |dom(a_i)|.
  int64_t size() const;

  /// Lower / upper bound of an integer domain.
  int64_t int_lo() const { return lo_; }
  int64_t int_hi() const { return hi_; }

  /// Values of a categorical domain, in order.
  const std::vector<std::string>& categories() const { return categories_; }

  /// \brief Maps a value to its ordinal position in [0, size()).
  /// Fails with NotFound when the value is outside the domain.
  Result<int64_t> IndexOf(const Value& v) const;

  /// Maps an ordinal position back to the domain value (index clamped by
  /// caller; out-of-range aborts).
  Value ValueAt(int64_t index) const;

  /// Debug rendering, e.g. "int[1992,1998]" or "cat{5}".
  std::string ToString() const;

  bool operator==(const AttributeDomain& o) const {
    return categorical_ == o.categorical_ && lo_ == o.lo_ && hi_ == o.hi_ &&
           categories_ == o.categories_;
  }

 private:
  bool categorical_ = false;
  int64_t lo_ = 0;
  int64_t hi_ = -1;  // empty by default
  std::vector<std::string> categories_;
};

}  // namespace dpstarj::storage
