// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace dpstarj::storage {

/// \brief A typed in-memory column.
///
/// Storage layout by type:
///  * kInt64  — std::vector<int64_t>
///  * kDouble — std::vector<double>
///  * kString — std::vector<int32_t> dictionary codes + shared Dictionary
///
/// Columns grow append-only; the Table guarantees equal lengths.
class Column {
 public:
  /// Creates an empty column. String columns allocate a fresh dictionary
  /// unless one is supplied (sharing enables integer-compare joins).
  explicit Column(ValueType type, std::shared_ptr<Dictionary> dict = nullptr);

  /// The column type.
  ValueType type() const { return type_; }
  /// Number of rows.
  int64_t size() const;

  /// \name Appends (type must match; mismatch returns InvalidArgument).
  /// @{
  Status Append(const Value& v);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendStringCode(int32_t code);
  int32_t AppendString(std::string_view s);  ///< interns and appends; returns code
  /// @}

  /// \name Typed readers (row must be in range; type checked in debug).
  /// @{
  int64_t GetInt64(int64_t row) const;
  double GetDouble(int64_t row) const;
  int32_t GetStringCode(int64_t row) const;
  const std::string& GetString(int64_t row) const;
  /// @}

  /// Generic reader producing a Value (slow path; for I/O and tests).
  Value GetValue(int64_t row) const;

  /// Numeric view of a cell: int64/double convert, string returns its code.
  double GetNumeric(int64_t row) const;

  /// Raw data access for tight loops.
  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<int32_t>& code_data() const { return code_data_; }

  /// The dictionary (string columns only; nullptr otherwise).
  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// A NumericView over this column (see below). The column must outlive it
  /// and must not grow while the view is live.
  class NumericView;
  NumericView numeric_view() const;

  /// Reserves capacity for n rows.
  void Reserve(int64_t n);

 private:
  ValueType type_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<int32_t> code_data_;
  std::shared_ptr<Dictionary> dict_;
};

/// \brief A typed span over a column's storage for tight scan loops: the data
/// pointer and type are resolved once, so the per-row read is a single
/// predictable branch + load instead of a method call through the column.
/// Semantics match Column::GetNumeric (string cells read as their code).
class Column::NumericView {
 public:
  explicit NumericView(const Column& col)
      : type_(col.type_),
        i64_(col.int64_data_.data()),
        f64_(col.double_data_.data()),
        code_(col.code_data_.data()) {}

  double operator[](int64_t row) const {
    switch (type_) {
      case ValueType::kInt64:
        return static_cast<double>(i64_[row]);
      case ValueType::kDouble:
        return f64_[row];
      case ValueType::kString:
        return static_cast<double>(code_[row]);
    }
    return 0.0;
  }

 private:
  ValueType type_;
  const int64_t* i64_;
  const double* f64_;
  const int32_t* code_;
};

inline Column::NumericView Column::numeric_view() const {
  return NumericView(*this);
}

}  // namespace dpstarj::storage
