// Copyright (c) dpstarj authors. Licensed under the MIT license.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dpstarj::storage {

/// \brief String interning pool backing dictionary-encoded string columns.
///
/// Codes are dense int32 indices in insertion order. One Dictionary may be
/// shared by several columns of the same attribute (e.g. a dimension key and
/// the fact-side foreign key), which makes join comparisons integer compares.
class Dictionary {
 public:
  /// Interns `s`, returning its code (existing or freshly assigned).
  int32_t GetOrInsert(std::string_view s);

  /// Returns the code for `s` or -1 if not present.
  int32_t Find(std::string_view s) const;

  /// Returns the string for a valid code.
  const std::string& At(int32_t code) const;

  /// Number of distinct strings.
  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// All interned strings in code order.
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace dpstarj::storage
